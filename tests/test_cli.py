"""Tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


def test_info_runs(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "ITC Distributed File System" in out


def test_mobility_runs(capsys):
    assert main(["mobility"]) == 0
    out = capsys.readouterr().out
    assert "initial penalty" in out
    assert "user mobility" in out


def test_day_small(capsys):
    assert main([
        "day", "--workstations", "3", "--hours", "0.05", "--warmup", "0.02",
    ]) == 0
    out = capsys.readouterr().out
    assert "campus day summary" in out
    assert "cache hit ratio" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_status_dashboard(capsys):
    assert main(["status"]) == 0
    out = capsys.readouterr().out
    assert "Vice servers" in out
    assert "Campus call mix" in out


def test_status_campus_shape_flags(capsys):
    assert main([
        "status", "--clusters", "1", "--workstations", "2",
        "--duration", "120", "--warmup", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "1 clusters" in out
    assert "2 workstations" in out
    assert "ws0-1" in out
    assert "ws1-0" not in out  # only one cluster was built


def test_status_trace_and_metrics_outputs(tmp_path, capsys):
    import json

    trace_path = tmp_path / "status.trace.json"
    metrics_path = tmp_path / "status.metrics.json"
    assert main([
        "status", "--clusters", "1", "--workstations", "1",
        "--duration", "60", "--warmup", "10",
        "--trace", str(trace_path), "--metrics-json", str(metrics_path),
    ]) == 0
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    metrics = json.loads(metrics_path.read_text())
    assert any(name.startswith("venus.") for name in metrics)
    assert any(name.startswith("vice.") for name in metrics)


def test_trace_subcommand_writes_valid_trace(tmp_path, capsys):
    import json

    out_path = tmp_path / "trace.json"
    jsonl_path = tmp_path / "trace.jsonl"
    assert main([
        "trace", "--check", "--out", str(out_path), "--jsonl", str(jsonl_path),
    ]) == 0
    printed = capsys.readouterr().out
    assert "coverage OK" in printed
    events = json.loads(out_path.read_text())["traceEvents"]
    assert any(e.get("ph") == "X" for e in events)
    assert len(jsonl_path.read_text().splitlines()) > 0


def test_profile_andrew(capsys):
    assert main(["profile", "--top", "5"]) == 0
    out = capsys.readouterr().out
    assert "hot spots" in out
    assert "net.route_cache" in out
    assert "protection.cps_cache" in out


def test_profile_campus(capsys):
    assert main([
        "profile", "campus",
        "--clusters", "2", "--workstations", "2",
        "--duration", "30", "--warmup", "10",
        "--top", "5", "--sort", "tottime",
    ]) == 0
    out = capsys.readouterr().out
    assert "profiling: campus day" in out
    assert "simulation counters" in out
    assert "location.resolve_cache" in out


def test_profile_campus_with_rolling_window(capsys):
    assert main([
        "profile", "campus",
        "--clusters", "1", "--workstations", "2",
        "--duration", "60", "--warmup", "10",
        "--top", "3", "--window", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "Top volumes" in out
    assert "Top servers" in out
    assert "snapshot overhead" in out


def test_chaos_with_rolling_window(capsys):
    assert main([
        "chaos", "--plan", "server-crash",
        "--clusters", "1", "--workstations", "2",
        "--duration", "600", "--warmup", "60",
        "--window", "120", "--top", "3",
    ]) == 0
    out = capsys.readouterr().out
    assert "availability" in out
    assert "Top volumes" in out
    assert "snapshot overhead" in out


def test_console_headless(capsys, tmp_path):
    events = tmp_path / "ops.jsonl"
    assert main([
        "console", "--headless",
        "--clusters", "1", "--workstations", "2",
        "--frames", "3", "--events", str(events),
    ]) == 0
    out = capsys.readouterr().out
    assert "ITC campus" in out
    assert "ALL CLEAR" in out
    assert events.exists()
