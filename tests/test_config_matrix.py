"""The full configuration matrix: every mode × validation × policy combo.

The paper describes one prototype and one redesign, but the mechanisms are
orthogonal; these tests pin that every combination actually works end to
end, so ablation benches can vary one axis at a time with confidence.
"""

import pytest

from repro import ITCSystem, SystemConfig
from tests.helpers import run

HOME = "/vice/usr/alice"

MATRIX = [
    ("prototype", "check-on-open"),
    ("prototype", "callback"),
    ("revised", "check-on-open"),
    ("revised", "callback"),
]


def build(mode, validation, **overrides):
    campus = ITCSystem(
        SystemConfig(mode=mode, validation=validation, clusters=1,
                     workstations_per_cluster=2, **overrides)
    )
    campus.add_user("alice", "alice-pw")
    campus.create_user_volume("alice")
    return campus


@pytest.mark.parametrize("mode,validation", MATRIX)
class TestEveryCombination:
    def test_write_read_share_cycle(self, mode, validation):
        campus = build(mode, validation)
        a = campus.login(0, "alice", "alice-pw")
        b = campus.login(1, "alice", "alice-pw")
        run(campus, a.write_file(f"{HOME}/f", b"v1"))
        assert run(campus, b.read_file(f"{HOME}/f")) == b"v1"
        run(campus, b.write_file(f"{HOME}/f", b"v2"))
        assert run(campus, a.read_file(f"{HOME}/f")) == b"v2"

    def test_directory_lifecycle(self, mode, validation):
        campus = build(mode, validation)
        session = campus.login(0, "alice", "alice-pw")
        run(campus, session.mkdir(f"{HOME}/d"))
        run(campus, session.write_file(f"{HOME}/d/f", b"x"))
        assert run(campus, session.listdir(f"{HOME}/d")) == ["f"]
        run(campus, session.unlink(f"{HOME}/d/f"))
        run(campus, session.rmdir(f"{HOME}/d"))
        assert "d" not in run(campus, session.listdir(HOME))

    def test_rereads_are_cache_hits(self, mode, validation):
        campus = build(mode, validation)
        session = campus.login(0, "alice", "alice-pw")
        run(campus, session.write_file(f"{HOME}/f", b"data"))
        run(campus, session.read_file(f"{HOME}/f"))
        fetches_before = campus.server(0).call_mix.count("fetch")
        for _ in range(3):
            run(campus, session.read_file(f"{HOME}/f"))
        assert campus.server(0).call_mix.count("fetch") == fetches_before

    def test_validation_traffic_matches_policy(self, mode, validation):
        campus = build(mode, validation)
        session = campus.login(0, "alice", "alice-pw")
        run(campus, session.write_file(f"{HOME}/f", b"data"))
        run(campus, session.read_file(f"{HOME}/f"))
        server = campus.server(0)
        before = server.call_mix.count("validate")
        for _ in range(4):
            run(campus, session.read_file(f"{HOME}/f"))
        validations = server.call_mix.count("validate") - before
        if validation == "check-on-open":
            assert validations >= 4  # every open checks
        else:
            assert validations == 0  # callbacks carry the trust

    def test_stale_cache_detected_after_remote_write(self, mode, validation):
        campus = build(mode, validation)
        a = campus.login(0, "alice", "alice-pw")
        b = campus.login(1, "alice", "alice-pw")
        run(campus, a.write_file(f"{HOME}/f", b"old"))
        run(campus, b.read_file(f"{HOME}/f"))
        run(campus, a.write_file(f"{HOME}/f", b"new"))
        assert run(campus, b.read_file(f"{HOME}/f")) == b"new"


@pytest.mark.parametrize("mode", ["prototype", "revised"])
@pytest.mark.parametrize("write_policy", ["on-close", "deferred"])
def test_write_policy_orthogonal_to_mode(mode, write_policy):
    campus = build(mode, None, write_policy=write_policy, flush_delay=5.0)
    session = campus.login(0, "alice", "alice-pw")
    run(campus, session.write_file(f"{HOME}/f", b"payload"))
    campus.run(until=campus.sim.now + 20.0)  # let any deferred flush land
    assert campus.volume("u-alice").read("/f") == b"payload"


@pytest.mark.parametrize("cache_policy", ["count", "space"])
def test_cache_policy_orthogonal(cache_policy):
    campus = build("revised", None, cache_max_files=5, cache_max_bytes=5000)
    ws = campus.workstation(0)
    ws.venus.cache.policy = cache_policy
    session = campus.login(0, "alice", "alice-pw")
    for index in range(8):
        run(campus, session.write_file(f"{HOME}/f{index}", b"z" * 500))
        run(campus, session.read_file(f"{HOME}/f{index}"))
    if cache_policy == "count":
        assert len(ws.venus.cache) <= 5
    else:
        assert ws.venus.cache.used_bytes <= 5000
