"""Tests for the live ops console model (repro.console), headless."""

import json

import pytest

from tests.helpers import small_campus

from repro.analysis.report import utilization_bar
from repro.console import ConsoleModel, KEY_HELP, run_headless
from repro.obs.live import OpsEventStream, SimulationController
from repro.workload import launch_campus_day, provision_campus


def console_campus(clusters=2, workstations_per_cluster=2, minutes=30.0,
                   stream=None):
    """A small campus with running users and a console model over it."""
    campus = small_campus(clusters=clusters,
                          workstations_per_cluster=workstations_per_cluster)
    users = provision_campus(campus, hot_files=4, cold_files=4,
                             shared_files=4, binary_files=4)
    launch_campus_day(campus, users, minutes * 60.0)
    controller = SimulationController(campus.sim)
    model = ConsoleModel(campus, controller, stream=stream, sample_every=10.0)
    for user in users:
        user.tracker = campus.availability
    return campus, model, users


# ======================================================================
# rendering and refresh
# ======================================================================


def test_utilization_bar():
    assert utilization_bar(0.0) == "[..........]"
    assert utilization_bar(1.0) == "[##########]"
    assert utilization_bar(0.5, width=4) == "[##..]"
    assert utilization_bar(7.5) == "[##########]"  # clamped
    assert utilization_bar(-1.0) == "[..........]"


def test_render_lines_shape():
    campus, model, _users = console_campus()
    model.controller.advance(60.0)
    model.refresh()
    lines = model.render_lines(width=100)
    frame = "\n".join(lines)
    assert "ITC campus" in frame
    assert "RUNNING" in frame
    assert "ALL CLEAR" in frame
    assert "server0" in frame
    assert "cluster0" in frame
    assert KEY_HELP in lines[-1]
    assert all(len(line) <= 100 for line in lines)


def test_refresh_samples_due_windows():
    campus, model, _users = console_campus()
    assert model.refresh() is None  # nothing due yet
    model.controller.advance(25.0)
    model.refresh()
    assert len(model.aggregator.windows) == 2  # t=10 and t=20 both due


def test_selection_and_key_dispatch():
    campus, model, _users = console_campus()
    assert model.selected_target == ("server", "server0")
    model.handle_key("\t")
    assert model.selected_target == ("server", "server1")
    model.handle_key("2")
    assert model.selected_target == ("cluster", "cluster0")
    model.handle_key("9")  # out of range: ignored
    assert model.selected_target == ("cluster", "cluster0")
    model.handle_key("q")
    assert model.quit_requested


def test_pause_resume_and_stepping():
    campus, model, _users = console_campus()
    model.handle_key(" ")
    assert model.controller.paused
    before = campus.sim.now
    model.controller.advance(before + 100.0)
    assert campus.sim.now == before
    model.handle_key(">")  # step_time works while paused
    assert campus.sim.now == before + 10.0
    model.handle_key(".")
    assert model.controller.events_stepped >= 1
    model.handle_key(" ")
    assert not model.controller.paused
    assert any(record["event"] == "operator" for record in model.stream.events)


def test_pacing_keys():
    campus, model, _users = console_campus()
    model.controller.pacing = 60.0
    model.handle_key("+")
    assert model.controller.pacing == 120.0
    model.handle_key("-")
    assert model.controller.pacing == 60.0


# ======================================================================
# fault injection from the console
# ======================================================================


def test_crash_selected_server_reaches_banner_and_stream(tmp_path):
    """The acceptance path: pause, inject a crash, resume — the outage
    shows up in the banner AND in the ops-event JSONL."""
    path = tmp_path / "ops.jsonl"
    campus = small_campus(clusters=2, workstations_per_cluster=2)
    users = provision_campus(campus, hot_files=4, cold_files=4,
                             shared_files=4, binary_files=4)
    launch_campus_day(campus, users, 1800.0)
    stream = OpsEventStream(campus.sim, path=str(path))
    model = ConsoleModel(campus, SimulationController(campus.sim),
                         stream=stream)
    for user in users:
        user.tracker = campus.availability

    model.controller.advance(30.0)
    model.handle_key(" ")          # pause (operator takes a look)
    assert model.controller.paused
    model.select(0)
    model.handle_key("c")          # crash server0
    model.handle_key(" ")          # resume
    model.controller.advance(60.0)  # fault window opens at ~t=30
    model.refresh()

    assert not campus.server("server0").host.up
    assert "server_crash:server0" in model.banner()
    frame = "\n".join(model.render_lines())
    assert "DOWN" in frame
    assert "ACTIVE FAULTS" in frame

    model.controller.advance(600.0)  # ride out the outage; users retry and
    assert campus.server("server0").host.up  # close their episodes
    assert model.banner() == "ALL CLEAR"

    stream.close()
    records = [json.loads(line) for line in path.read_text().splitlines()]
    events = [record["event"] for record in records]
    operator = next(r for r in records if r["event"] == "operator"
                    and r["action"] == "crash_server")
    assert operator["target"] == "server0"
    assert "fault" in events
    assert "recovery" in events
    assert "salvage" in events


def test_crash_requires_server_selection():
    campus, model, _users = console_campus()
    model.select(2)  # a cluster segment
    model.handle_key("c")
    assert "press p to partition" in model.status
    assert not model.scheduler.active


def test_crash_twice_is_rejected():
    campus, model, _users = console_campus()
    model.select(0)
    model.crash_selected()
    campus.sim.run(until=campus.sim.now + 1.0)
    model.crash_selected()
    assert "already down" in model.status


def test_partition_selected_cluster():
    campus, model, _users = console_campus()
    model.select(3)  # cluster1
    model.handle_key("p")
    campus.sim.run(until=campus.sim.now + 1.0)
    assert "cluster1" in campus.network.partitioned
    assert "partition:cluster1" in model.banner()
    frame = "\n".join(model.render_lines())
    assert "CUT" in frame
    model.partition_selected()
    assert "already partitioned" in model.status
    model.select(0)
    model.handle_key("p")
    assert "press c to crash" in model.status


def test_start_chaos_once():
    campus, model, _users = console_campus()
    model.handle_key("x")
    assert model.status == "chaos started"
    assert model.scheduler.chaos_running
    model.handle_key("x")
    assert model.status == "chaos already running"
    actions = [record.get("action") for record in model.stream.events]
    assert actions.count("start_chaos") == 1


# ======================================================================
# headless driver
# ======================================================================


def test_run_headless_advances_and_prints(capsys):
    campus, model, _users = console_campus()
    assert run_headless(model, frames=3, frame_virtual_seconds=10.0) == 0
    assert campus.sim.now == 30.0
    out = capsys.readouterr().out
    assert "ITC campus" in out


def test_run_headless_stops_on_quit(capsys):
    campus, model, _users = console_campus()
    model.quit_requested = True
    run_headless(model, frames=50, frame_virtual_seconds=10.0)
    assert campus.sim.now == 0.0
