"""Unit tests for the encryption substrate and the mutual handshake."""

import pytest

from repro.crypto import (
    ClientHandshake,
    SessionCipher,
    ServerHandshake,
    derive_session_key,
    derive_user_key,
    fresh_nonce,
    keystream,
    seal,
    unseal,
)
from repro.errors import AuthenticationFailure, IntegrityError


class TestCipher:
    def test_seal_unseal_roundtrip(self):
        key = derive_user_key("u", "pw")
        sealed = seal(key, b"12345678", b"secret payload")
        assert unseal(key, sealed) == b"secret payload"

    def test_ciphertext_differs_from_plaintext(self):
        key = derive_user_key("u", "pw")
        sealed = seal(key, b"12345678", b"secret payload")
        assert b"secret payload" not in sealed

    def test_wrong_key_detected(self):
        sealed = seal(derive_user_key("u", "pw"), b"12345678", b"data")
        with pytest.raises(IntegrityError):
            unseal(derive_user_key("u", "other"), sealed)

    def test_tampering_detected(self):
        key = derive_user_key("u", "pw")
        sealed = bytearray(seal(key, b"12345678", b"data"))
        sealed[10] ^= 0xFF
        with pytest.raises(IntegrityError):
            unseal(key, bytes(sealed))

    def test_truncated_message_detected(self):
        key = derive_user_key("u", "pw")
        with pytest.raises(IntegrityError):
            unseal(key, b"short")

    def test_empty_plaintext(self):
        key = derive_user_key("u", "pw")
        assert unseal(key, seal(key, b"12345678", b"")) == b""

    def test_bad_nonce_length_rejected(self):
        with pytest.raises(ValueError):
            seal(b"k" * 32, b"short", b"data")

    def test_keystream_deterministic(self):
        assert keystream(b"k", b"n", 64) == keystream(b"k", b"n", 64)
        assert keystream(b"k", b"n", 64) != keystream(b"k", b"m", 64)


class TestSessionCipher:
    def test_roundtrip_between_directions(self):
        key = derive_session_key(b"k" * 32, b"cn", b"sn")
        sender = SessionCipher(key, direction=0)
        sealed = sender.encrypt(b"message one")
        receiver = SessionCipher(key, direction=1)
        assert receiver.decrypt(sealed) == b"message one"

    def test_nonces_never_repeat(self):
        cipher = SessionCipher(b"k" * 32)
        first = cipher.encrypt(b"same")
        second = cipher.encrypt(b"same")
        assert first != second

    def test_byte_accounting(self):
        cipher = SessionCipher(b"k" * 32)
        cipher.encrypt(b"12345")
        assert cipher.bytes_encrypted == 5


class TestKeys:
    def test_derive_user_key_depends_on_both_parts(self):
        assert derive_user_key("a", "pw") != derive_user_key("b", "pw")
        assert derive_user_key("a", "pw") != derive_user_key("a", "pw2")

    def test_session_key_binds_both_nonces(self):
        base = derive_session_key(b"k", b"c1", b"s1")
        assert base != derive_session_key(b"k", b"c2", b"s1")
        assert base != derive_session_key(b"k", b"c1", b"s2")

    def test_fresh_nonce_distinct_by_seed(self):
        assert fresh_nonce(b"a") != fresh_nonce(b"b")
        assert len(fresh_nonce(b"a")) == 16


def complete_handshake(client_key, server_key_db, entropy=b"e"):
    client = ClientHandshake("alice", client_key, entropy)
    server = ServerHandshake(lambda user: server_key_db[user], entropy + b"2")
    username, hello = client.hello()
    challenge = server.respond(username, hello)
    confirm = client.verify_server(challenge)
    server.verify_client(confirm)
    return client, server


class TestHandshake:
    def test_mutual_authentication_agrees_on_session_key(self):
        key = derive_user_key("alice", "pw")
        client, server = complete_handshake(key, {"alice": key})
        assert client.session_key == server.session_key
        assert client.session_key is not None
        assert server.username == "alice"

    def test_wrong_client_key_rejected_by_server(self):
        right = derive_user_key("alice", "pw")
        wrong = derive_user_key("alice", "guess")
        client = ClientHandshake("alice", wrong, b"e")
        server = ServerHandshake(lambda user: {"alice": right}[user], b"e2")
        username, hello = client.hello()
        with pytest.raises(AuthenticationFailure):
            server.respond(username, hello)

    def test_unknown_user_rejected_identically(self):
        client = ClientHandshake("mallory", derive_user_key("mallory", "x"), b"e")
        server = ServerHandshake(lambda user: {"alice": b"k" * 32}[user], b"e2")
        username, hello = client.hello()
        with pytest.raises(AuthenticationFailure, match="authentication failed"):
            server.respond(username, hello)

    def test_impostor_server_rejected_by_client(self):
        real = derive_user_key("alice", "pw")
        fake = derive_user_key("alice", "evil")
        client = ClientHandshake("alice", real, b"e")
        impostor = ServerHandshake(lambda user: fake, b"e2")
        username, hello = client.hello()
        # The impostor cannot even read the challenge, but suppose it
        # replies with garbage of the right shape:
        with pytest.raises(AuthenticationFailure):
            impostor.respond(username, hello)

    def test_replayed_challenge_rejected(self):
        key = derive_user_key("alice", "pw")
        # A past exchange an eavesdropper recorded:
        _old_client, old_server = complete_handshake(key, {"alice": key}, b"old")
        # New client session; attacker replays the old server response.
        client = ClientHandshake("alice", key, b"new")
        client.hello()
        old_response = None
        # Regenerate the old exchange's message 2 verbatim:
        replay_client = ClientHandshake("alice", key, b"old")
        replay_server = ServerHandshake(lambda user: key, b"old2")
        username, hello = replay_client.hello()
        old_response = replay_server.respond(username, hello)
        with pytest.raises(AuthenticationFailure, match="replay"):
            client.verify_server(old_response)

    def test_client_confirm_cannot_be_faked(self):
        key = derive_user_key("alice", "pw")
        client = ClientHandshake("alice", key, b"e")
        server = ServerHandshake(lambda user: key, b"e2")
        username, hello = client.hello()
        server.respond(username, hello)
        with pytest.raises(AuthenticationFailure):
            server.verify_client(b"not a valid confirmation")

    def test_out_of_order_confirm_rejected(self):
        server = ServerHandshake(lambda user: b"k" * 32, b"e")
        with pytest.raises(AuthenticationFailure, match="out of order"):
            server.verify_client(b"anything")

    def test_password_never_appears_on_wire(self):
        password = "super-secret-password"
        key = derive_user_key("alice", password)
        client = ClientHandshake("alice", key, b"e")
        server = ServerHandshake(lambda user: key, b"e2")
        username, hello = client.hello()
        challenge = server.respond(username, hello)
        confirm = client.verify_server(challenge)
        wire = hello + challenge + confirm
        assert password.encode() not in wire
        assert key not in wire
