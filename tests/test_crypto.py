"""Unit tests for the encryption substrate and the mutual handshake."""

import pytest

import hashlib
import hmac

from repro.crypto import (
    ClientHandshake,
    SealedPayload,
    SessionCipher,
    ServerHandshake,
    derive_session_key,
    derive_user_key,
    fresh_nonce,
    keystream,
    open_sealed,
    seal,
    unseal,
)
from repro.errors import AuthenticationFailure, IntegrityError


class TestCipher:
    def test_seal_unseal_roundtrip(self):
        key = derive_user_key("u", "pw")
        sealed = seal(key, b"12345678", b"secret payload")
        assert unseal(key, sealed) == b"secret payload"

    def test_ciphertext_differs_from_plaintext(self):
        key = derive_user_key("u", "pw")
        sealed = seal(key, b"12345678", b"secret payload")
        assert b"secret payload" not in sealed

    def test_wrong_key_detected(self):
        sealed = seal(derive_user_key("u", "pw"), b"12345678", b"data")
        with pytest.raises(IntegrityError):
            unseal(derive_user_key("u", "other"), sealed)

    def test_tampering_detected(self):
        key = derive_user_key("u", "pw")
        sealed = bytearray(seal(key, b"12345678", b"data"))
        sealed[10] ^= 0xFF
        with pytest.raises(IntegrityError):
            unseal(key, bytes(sealed))

    def test_truncated_message_detected(self):
        key = derive_user_key("u", "pw")
        with pytest.raises(IntegrityError):
            unseal(key, b"short")

    def test_empty_plaintext(self):
        key = derive_user_key("u", "pw")
        assert unseal(key, seal(key, b"12345678", b"")) == b""

    def test_bad_nonce_length_rejected(self):
        with pytest.raises(ValueError):
            seal(b"k" * 32, b"short", b"data")

    def test_keystream_deterministic(self):
        assert keystream(b"k", b"n", 64) == keystream(b"k", b"n", 64)
        assert keystream(b"k", b"n", 64) != keystream(b"k", b"m", 64)


class TestSessionCipher:
    def test_roundtrip_between_directions(self):
        key = derive_session_key(b"k" * 32, b"cn", b"sn")
        sender = SessionCipher(key, direction=0)
        sealed = sender.encrypt(b"message one")
        receiver = SessionCipher(key, direction=1)
        assert receiver.decrypt(sealed) == b"message one"

    def test_nonces_never_repeat(self):
        cipher = SessionCipher(b"k" * 32)
        first = cipher.encrypt(b"same")
        second = cipher.encrypt(b"same")
        assert first != second

    def test_byte_accounting(self):
        cipher = SessionCipher(b"k" * 32)
        cipher.encrypt(b"12345")
        assert cipher.bytes_encrypted == 5

    def test_nonces_monotonic_and_disjoint_across_directions(self):
        key = b"k" * 32
        forward = SessionCipher(key, direction=0)
        backward = SessionCipher(key, direction=1)
        forward_nonces = [forward.encrypt(b"m")[:8] for _ in range(4)]
        backward_nonces = [backward.encrypt(b"m")[:8] for _ in range(4)]
        # Strictly increasing counters within each direction...
        assert forward_nonces == sorted(set(forward_nonces))
        assert backward_nonces == sorted(set(backward_nonces))
        # ...and the direction byte keeps the two streams disjoint forever.
        assert all(nonce[0] == 0 for nonce in forward_nonces)
        assert all(nonce[0] == 1 for nonce in backward_nonces)
        assert not set(forward_nonces) & set(backward_nonces)


class TestPayloadFastPath:
    """The opt-in SealedPayload path used for whole-file transfer."""

    KEY = derive_session_key(b"k" * 32, b"cn", b"sn")

    def test_fast_path_roundtrip(self):
        cipher = SessionCipher(self.KEY, direction=0)
        sealed = cipher.seal_payload(b"whole file body")
        assert isinstance(sealed, SealedPayload)
        assert open_sealed(self.KEY, sealed) == b"whole file body"

    def test_wire_bytes_identical_to_slow_path(self):
        # Two ciphers in the same state must produce byte-for-byte the same
        # wire message whether or not the fast path is used.
        slow = SessionCipher(self.KEY, direction=0)
        fast = SessionCipher(self.KEY, direction=0)
        data = b"payload" * 999
        assert bytes(fast.seal_payload(data)) == slow.encrypt(data)

    def test_plain_bytes_still_open(self):
        # A receiver holding only the wire bytes (no SealedPayload object)
        # opens the message through the full unseal.
        cipher = SessionCipher(self.KEY, direction=0)
        sealed = bytes(cipher.seal_payload(b"over the wire"))
        assert open_sealed(self.KEY, sealed) == b"over the wire"

    def test_tampering_detected_despite_remembered_plaintext(self):
        cipher = SessionCipher(self.KEY, direction=0)
        sealed = cipher.seal_payload(b"data")
        mutated = bytearray(sealed)
        mutated[10] ^= 0xFF
        tampered = SealedPayload(bytes(mutated))
        tampered.plain = sealed.plain  # an attacker can't fake the MAC
        with pytest.raises(IntegrityError):
            open_sealed(self.KEY, tampered)

    def test_wrong_key_rejected(self):
        cipher = SessionCipher(self.KEY, direction=0)
        sealed = cipher.seal_payload(b"data")
        with pytest.raises(IntegrityError):
            open_sealed(derive_session_key(b"x" * 32, b"cn", b"sn"), sealed)

    def test_open_payload_counts_bytes(self):
        sender = SessionCipher(self.KEY, direction=0)
        receiver = SessionCipher(self.KEY, direction=0)
        receiver.open_payload(sender.seal_payload(b"12345"))
        assert receiver.bytes_decrypted == 5


# Verbatim re-implementation of the original per-byte cipher, kept as the
# wire-compatibility reference: the vectorized implementation must produce
# and accept exactly these bytes.

def _reference_keystream(key, nonce, length):
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def _reference_seal(key, nonce, plaintext):
    stream = _reference_keystream(key, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(key, nonce + ciphertext, hashlib.sha256).digest()[:16]
    return nonce + ciphertext + tag


def _reference_unseal(key, sealed):
    nonce, tag = sealed[:8], sealed[-16:]
    ciphertext = sealed[8:-16]
    assert hmac.compare_digest(tag, hmac.new(key, nonce + ciphertext, hashlib.sha256).digest()[:16])
    stream = _reference_keystream(key, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))


class TestWireCompatibility:
    """The vectorized cipher speaks the original implementation's format."""

    KEY = derive_user_key("u", "pw")
    NONCE = b"\x00nonce!!"

    @pytest.mark.parametrize("size", [0, 1, 31, 32, 33, 4096, 65_536 + 7])
    def test_keystream_matches_reference(self, size):
        assert keystream(self.KEY, self.NONCE, size) == _reference_keystream(
            self.KEY, self.NONCE, size
        )

    @pytest.mark.parametrize("size", [0, 1, 500, 65_536])
    def test_old_seal_opens_under_new_unseal(self, size):
        data = bytes(i & 0xFF for i in range(size))
        assert unseal(self.KEY, _reference_seal(self.KEY, self.NONCE, data)) == data

    @pytest.mark.parametrize("size", [0, 1, 500, 65_536])
    def test_new_seal_opens_under_old_unseal(self, size):
        data = bytes((i * 7) & 0xFF for i in range(size))
        assert _reference_unseal(self.KEY, seal(self.KEY, self.NONCE, data)) == data

    def test_sealed_bytes_identical(self):
        data = b"the quick brown fox" * 100
        assert seal(self.KEY, self.NONCE, data) == _reference_seal(
            self.KEY, self.NONCE, data
        )


class TestKeys:
    def test_derive_user_key_depends_on_both_parts(self):
        assert derive_user_key("a", "pw") != derive_user_key("b", "pw")
        assert derive_user_key("a", "pw") != derive_user_key("a", "pw2")

    def test_session_key_binds_both_nonces(self):
        base = derive_session_key(b"k", b"c1", b"s1")
        assert base != derive_session_key(b"k", b"c2", b"s1")
        assert base != derive_session_key(b"k", b"c1", b"s2")

    def test_fresh_nonce_distinct_by_seed(self):
        assert fresh_nonce(b"a") != fresh_nonce(b"b")
        assert len(fresh_nonce(b"a")) == 16


def complete_handshake(client_key, server_key_db, entropy=b"e"):
    client = ClientHandshake("alice", client_key, entropy)
    server = ServerHandshake(lambda user: server_key_db[user], entropy + b"2")
    username, hello = client.hello()
    challenge = server.respond(username, hello)
    confirm = client.verify_server(challenge)
    server.verify_client(confirm)
    return client, server


class TestHandshake:
    def test_mutual_authentication_agrees_on_session_key(self):
        key = derive_user_key("alice", "pw")
        client, server = complete_handshake(key, {"alice": key})
        assert client.session_key == server.session_key
        assert client.session_key is not None
        assert server.username == "alice"

    def test_wrong_client_key_rejected_by_server(self):
        right = derive_user_key("alice", "pw")
        wrong = derive_user_key("alice", "guess")
        client = ClientHandshake("alice", wrong, b"e")
        server = ServerHandshake(lambda user: {"alice": right}[user], b"e2")
        username, hello = client.hello()
        with pytest.raises(AuthenticationFailure):
            server.respond(username, hello)

    def test_unknown_user_rejected_identically(self):
        client = ClientHandshake("mallory", derive_user_key("mallory", "x"), b"e")
        server = ServerHandshake(lambda user: {"alice": b"k" * 32}[user], b"e2")
        username, hello = client.hello()
        with pytest.raises(AuthenticationFailure, match="authentication failed"):
            server.respond(username, hello)

    def test_impostor_server_rejected_by_client(self):
        real = derive_user_key("alice", "pw")
        fake = derive_user_key("alice", "evil")
        client = ClientHandshake("alice", real, b"e")
        impostor = ServerHandshake(lambda user: fake, b"e2")
        username, hello = client.hello()
        # The impostor cannot even read the challenge, but suppose it
        # replies with garbage of the right shape:
        with pytest.raises(AuthenticationFailure):
            impostor.respond(username, hello)

    def test_replayed_challenge_rejected(self):
        key = derive_user_key("alice", "pw")
        # A past exchange an eavesdropper recorded:
        _old_client, old_server = complete_handshake(key, {"alice": key}, b"old")
        # New client session; attacker replays the old server response.
        client = ClientHandshake("alice", key, b"new")
        client.hello()
        old_response = None
        # Regenerate the old exchange's message 2 verbatim:
        replay_client = ClientHandshake("alice", key, b"old")
        replay_server = ServerHandshake(lambda user: key, b"old2")
        username, hello = replay_client.hello()
        old_response = replay_server.respond(username, hello)
        with pytest.raises(AuthenticationFailure, match="replay"):
            client.verify_server(old_response)

    def test_client_confirm_cannot_be_faked(self):
        key = derive_user_key("alice", "pw")
        client = ClientHandshake("alice", key, b"e")
        server = ServerHandshake(lambda user: key, b"e2")
        username, hello = client.hello()
        server.respond(username, hello)
        with pytest.raises(AuthenticationFailure):
            server.verify_client(b"not a valid confirmation")

    def test_out_of_order_confirm_rejected(self):
        server = ServerHandshake(lambda user: b"k" * 32, b"e")
        with pytest.raises(AuthenticationFailure, match="out of order"):
            server.verify_client(b"anything")

    def test_password_never_appears_on_wire(self):
        password = "super-secret-password"
        key = derive_user_key("alice", password)
        client = ClientHandshake("alice", key, b"e")
        server = ServerHandshake(lambda user: key, b"e2")
        username, hello = client.hello()
        challenge = server.respond(username, hello)
        confirm = client.verify_server(challenge)
        wire = hello + challenge + confirm
        assert password.encode() not in wire
        assert key not in wire
