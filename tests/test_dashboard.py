"""First tests for the operator dashboard (analysis/dashboard.py).

The reports are driven by the metrics registry, so these tests pin both the
table rendering and the registry wiring behind it.
"""

from tests.helpers import alice_session, run, small_campus

from repro.analysis.dashboard import (
    campus_report,
    server_report,
    volume_report,
    workstation_report,
)


def _busy_campus():
    campus = small_campus(workstations_per_cluster=2)
    writer = alice_session(campus, ws=0)
    reader = alice_session(campus, ws=1)
    run(campus, writer.write_file("/vice/usr/alice/doc", b"d" * 3000))
    run(campus, reader.read_file("/vice/usr/alice/doc"))
    run(campus, reader.read_file("/vice/usr/alice/doc"))  # a cache hit
    return campus


def test_workstation_report_rows_match_registry():
    campus = _busy_campus()
    table = workstation_report(campus)
    rendered = str(table)
    assert "Virtue workstations" in rendered
    for workstation in campus.workstations:
        assert workstation.name in rendered
    # The rendered counts are the registry's, which are the components'.
    venus = campus.workstation(1).venus
    name = campus.workstation(1).name
    row = next(r for r in table.rows if r[0] == name)
    assert row[4] == str(venus.opens)
    assert row[5] == str(venus.fetches)
    assert row[6] == str(venus.stores)


def test_server_report_rows_match_registry():
    campus = _busy_campus()
    table = server_report(campus)
    rendered = str(table)
    assert "Vice servers" in rendered
    server = campus.servers[0]
    row = next(r for r in table.rows if r[0] == server.host.name)
    assert row[1] == str(len(server.volumes))
    assert row[4] == str(server.node.calls_received.total)
    assert row[7] == str(server.callbacks.state_size)
    assert row[8] == str(len(server.locks))


def test_server_report_respects_window_start():
    campus = _busy_campus()
    # A window starting "now" has seen no busy time: utilization renders 0.
    late = server_report(campus, start=campus.sim.now)
    row = next(iter(late.rows))
    assert row[5].strip() == "0.0%"


def test_volume_report_lists_mounts():
    campus = _busy_campus()
    rendered = str(volume_report(campus))
    assert "/usr/alice" in rendered
    assert "u-alice" in rendered


def test_campus_report_composes_all_sections():
    campus = _busy_campus()
    rendered = campus_report(campus)
    assert "Campus status at t=" in rendered
    assert "Vice servers" in rendered
    assert "Virtue workstations" in rendered
    assert "Location database" in rendered
    assert "Campus call mix" in rendered


def test_reports_render_on_an_idle_campus():
    campus = small_campus()
    rendered = campus_report(campus)
    assert "Vice servers" in rendered  # no traffic, still renders
