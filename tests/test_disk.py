"""Unit tests for the simulated disk."""

import pytest

from repro.sim import Simulator
from repro.storage.disk import Disk


@pytest.fixture
def sim():
    return Simulator()


def test_service_time_sequential_has_single_position_cost(sim):
    disk = Disk(sim, avg_seek=0.02, avg_rotation=0.01, transfer_rate_bps=1_000_000)
    assert disk.service_time(1_000_000, sequential=True) == pytest.approx(0.03 + 1.0)


def test_service_time_paged_positions_per_page(sim):
    disk = Disk(sim, avg_seek=0.02, avg_rotation=0.01, transfer_rate_bps=1_000_000)
    paged = disk.service_time(8192, sequential=False, page_size=4096)
    assert paged == pytest.approx(2 * 0.03 + 8192 / 1_000_000)


def test_whole_file_cheaper_than_paged(sim):
    disk = Disk(sim)
    size = 100_000
    assert disk.service_time(size, sequential=True) < disk.service_time(
        size, sequential=False, page_size=4096
    )


def test_small_access_same_either_way(sim):
    disk = Disk(sim)
    assert disk.service_time(1000, sequential=False) == disk.service_time(
        1000, sequential=True
    )


def test_zero_bytes_still_costs_positioning(sim):
    disk = Disk(sim, avg_seek=0.02, avg_rotation=0.01)
    assert disk.service_time(0) == pytest.approx(0.03)


def test_access_advances_clock_and_counts(sim):
    disk = Disk(sim, avg_seek=0.02, avg_rotation=0.01, transfer_rate_bps=1_000_000)

    def proc():
        yield from disk.access(500_000)
        yield from disk.access(100_000, write=True)
        return sim.now

    elapsed = sim.run_until_complete(sim.process(proc()))
    assert elapsed == pytest.approx(0.03 + 0.5 + 0.03 + 0.1)
    assert disk.bytes_read == 500_000
    assert disk.bytes_written == 100_000
    assert disk.operations == 2


def test_concurrent_accesses_serialize_on_arm(sim):
    disk = Disk(sim, avg_seek=0.0, avg_rotation=0.0, transfer_rate_bps=1_000_000)
    finish = []

    def worker():
        yield from disk.access(1_000_000)
        finish.append(sim.now)

    sim.process(worker())
    sim.process(worker())
    sim.run()
    assert finish == [pytest.approx(1.0), pytest.approx(2.0)]


def test_utilization_measured(sim):
    disk = Disk(sim, avg_seek=0.0, avg_rotation=0.0, transfer_rate_bps=1_000_000)

    def worker():
        yield from disk.access(1_000_000)
        yield sim.timeout(9.0)

    sim.process(worker())
    sim.run()
    assert disk.mean_utilization(0.0, 10.0) == pytest.approx(0.1)
