"""Tests for repro.vice.erasure: codec, striping, degraded reads, rebuild.

The contract: with ``SystemConfig(erasure=ErasureConfig(k, m))`` every
volume is striped into k data + m parity fragments on distinct servers;
reads reconstruct from any k of the k+m members (degraded reads when
some are dead), writes re-encode with majority-of-stripe durability, and
the heartbeat controller rebuilds lost fragments onto spares.  With
``erasure=None`` (the default) the module is never even imported.
"""

import random
import subprocess
import sys
import warnings

import pytest

from tests.helpers import run, small_campus

from repro.crypto import cipher
from repro.errors import IntegrityError, InvalidArgument, ReproError
from repro.faults.plan import server_crash_plan
from repro.vice.erasure import (
    ErasureConfig,
    decode,
    encode,
    fragment_length,
    plan_stripe,
    stripe_health,
)
from repro.vice.location import LocationDatabase, LocationEntry
from repro.workload import provision_campus, run_campus_day

HOME = "/vice/usr/alice"


def coded_campus(clusters=3, shape=(2, 1), workstations_per_cluster=2,
                 **overrides):
    """A campus with every volume striped ``shape[0]`` + ``shape[1]``."""
    return small_campus(
        clusters=clusters,
        workstations_per_cluster=workstations_per_cluster,
        erasure=ErasureConfig(data=shape[0], parity=shape[1]),
        **overrides,
    )


def settle(campus, seconds):
    """Let heartbeats, death declarations and rebuilds run."""
    campus.run(until=campus.sim.now + seconds)


def entry_for(campus, mount="/usr/alice"):
    entry, _rest = campus.replication_controller.location.resolve(mount)
    return entry


def session(campus, ws=0):
    return campus.login(ws, "alice", "alice-pw")


# ----------------------------------------------------------------------
# the GF(256) codec
# ----------------------------------------------------------------------

class TestCodec:
    @pytest.mark.parametrize("k,m", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3)])
    @pytest.mark.parametrize("size", [0, 1, 5, 257, 4099])
    def test_round_trip(self, k, m, size):
        data = bytes(range(256)) * (size // 256 + 1)
        data = data[:size]
        frags = encode(data, k, m)
        assert len(frags) == k + m
        assert all(len(f) == fragment_length(size, k) for f in frags)
        assert decode(dict(enumerate(frags)), k, m, size) == data

    def test_any_k_of_k_plus_m_reconstructs(self):
        import itertools

        k, m = 3, 2
        data = bytes(random.Random(7).randrange(256) for _ in range(1000))
        frags = encode(data, k, m)
        for subset in itertools.combinations(range(k + m), k):
            picked = {i: frags[i] for i in subset}
            assert decode(picked, k, m, len(data)) == data

    def test_randomized_property(self):
        rng = random.Random(42)
        for _ in range(25):
            k = rng.randrange(1, 6)
            m = rng.randrange(1, 4)
            size = rng.randrange(0, 3000)
            data = bytes(rng.randrange(256) for _ in range(size))
            frags = encode(data, k, m)
            alive = rng.sample(range(k + m), k)
            assert decode({i: frags[i] for i in alive}, k, m, size) == data

    def test_fewer_than_k_fragments_raises(self):
        frags = encode(b"x" * 100, 3, 2)
        with pytest.raises(ValueError):
            decode({0: frags[0], 1: frags[1]}, 3, 2, 100)

    def test_empty_file_needs_no_fragments(self):
        assert decode({}, 4, 2, 0) == b""
        assert fragment_length(0, 4) == 0

    def test_corrupt_sealed_fragment_is_detected(self):
        # Fragments ride inside the existing encrypt-then-MAC envelope;
        # a flipped byte anywhere in the sealed blob fails the tag check.
        key = bytes(range(32))
        frag = encode(b"stripe me" * 50, 2, 1)[1]
        sealed = bytearray(cipher.seal(key, b"\x00" * 8, frag))
        sealed[len(sealed) // 2] ^= 0x40
        with pytest.raises(IntegrityError):
            cipher.unseal(key, bytes(sealed))


# ----------------------------------------------------------------------
# configuration and placement
# ----------------------------------------------------------------------

class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ErasureConfig(data=0, parity=1)
        with pytest.raises(ValueError):
            ErasureConfig(data=2, parity=0)
        with pytest.raises(ValueError):
            ErasureConfig(data=250, parity=7)
        with pytest.raises(ValueError):
            ErasureConfig(data=2, parity=1, lease_duration=1000.0)

    def test_derived_properties(self):
        config = ErasureConfig(data=4, parity=2)
        assert config.width == 6
        assert config.storage_overhead == pytest.approx(1.5)

    def test_prototype_mode_is_refused(self):
        with pytest.raises(InvalidArgument):
            small_campus(mode="prototype", clusters=3,
                         erasure=ErasureConfig(data=2, parity=1))

    def test_exclusive_with_replication(self):
        from repro.vice.replication import ReplicationConfig

        with pytest.raises(InvalidArgument):
            small_campus(clusters=3, erasure=ErasureConfig(data=2, parity=1),
                         replication=ReplicationConfig(factor=2))

    def test_too_few_servers_is_refused(self):
        with pytest.raises(InvalidArgument):
            small_campus(clusters=2, erasure=ErasureConfig(data=2, parity=1))


class TestPlanStripe:
    def _db(self, entries=()):
        db = LocationDatabase()
        for i, (mount, replicas) in enumerate(entries):
            entry = db.add(mount, f"vol{i}", replicas[0])
            entry.replicas = list(replicas)
        return db

    def test_custodian_first_and_distinct(self):
        names = ["server0", "server1", "server2", "server3"]
        picked = plan_stripe(self._db(), names, "server2", 3)
        assert picked[0] == "server2"
        assert len(set(picked)) == 3
        assert set(picked) <= set(names)

    def test_balances_across_volumes(self):
        names = ["server0", "server1", "server2", "server3"]
        db = self._db([("/a", ["server0", "server1", "server2"])])
        picked = plan_stripe(db, names, "server0", 3)
        # server3 holds nothing yet, so it must be chosen over the
        # already-loaded server1/server2.
        assert "server3" in picked

    def test_too_few_servers_raises(self):
        with pytest.raises(InvalidArgument):
            plan_stripe(self._db(), ["server0", "server1"], "server0", 3)


# ----------------------------------------------------------------------
# striped store and fetch
# ----------------------------------------------------------------------

class TestStripedIO:
    def test_write_lands_fragments_on_every_member(self):
        campus = coded_campus()
        alice = session(campus)
        data = b"stripe payload " * 64
        run(campus, alice.write_file(f"{HOME}/f", data))
        # The store returns at quorum; let the propagation tail land.
        settle(campus, 5.0)

        entry = entry_for(campus)
        assert entry.erasure == [2, 1]
        assert len(entry.replicas) == 3
        frag_len = fragment_length(len(data), 2)
        for index, name in enumerate(entry.replicas):
            volume = campus.server(name).volumes["u-alice"]
            assert volume.erasure_index == index
            vnode = volume.resolve(f"/f").number
            assert len(volume.fragments[vnode]) == frag_len
            assert volume.fragment_true_sizes[vnode] == len(data)
            # File bodies live only as fragments.
            assert volume.inode_by_vnode(vnode).data == b""

    def test_read_back_and_stat_report_true_size(self):
        campus = coded_campus()
        alice = session(campus)
        data = b"0123456789" * 33  # not a multiple of k: padding truncated
        run(campus, alice.write_file(f"{HOME}/f", data))
        # A second workstation has no cache; it must fetch fragments.
        other = session(campus, ws=1)
        assert run(campus, other.read_file(f"{HOME}/f")) == data
        stat = run(campus, other.stat(f"{HOME}/f"))
        assert stat["size"] == len(data)

    def test_overwrite_reencodes(self):
        campus = coded_campus()
        alice = session(campus)
        run(campus, alice.write_file(f"{HOME}/f", b"v1" * 100))
        run(campus, alice.write_file(f"{HOME}/f", b"second version!" * 9))
        other = session(campus, ws=1)
        assert run(campus, other.read_file(f"{HOME}/f")) == b"second version!" * 9
        entry = entry_for(campus)
        for name in entry.replicas:
            volume = campus.server(name).volumes["u-alice"]
            vnode = volume.resolve("/f").number
            assert volume.fragment_true_sizes[vnode] == len(b"second version!" * 9)

    def test_unlink_drops_fragments_everywhere(self):
        campus = coded_campus()
        alice = session(campus)
        run(campus, alice.write_file(f"{HOME}/f", b"doomed" * 50))
        run(campus, alice.unlink(f"{HOME}/f"))
        for name in entry_for(campus).replicas:
            volume = campus.server(name).volumes["u-alice"]
            assert volume.fragments == {}
            assert volume.fragment_bytes == 0

    def test_storage_overhead_is_k_plus_m_over_k(self):
        campus = coded_campus(shape=(2, 1))
        alice = session(campus)
        data = b"x" * 10_000
        run(campus, alice.write_file(f"{HOME}/big", data))
        settle(campus, 5.0)
        total = sum(
            volume.fragment_bytes
            for server in campus.servers
            for volume in server.volumes.values()
            if volume.volume_id == "u-alice"
        )
        assert total == pytest.approx(1.5 * len(data), rel=0.01)

    def test_populate_matches_protocol_writes(self):
        campus = coded_campus()
        volume = campus.volume("u-alice")
        campus.populate(volume, {"/seeded": b"pre-loaded bytes" * 20},
                        owner="alice")
        alice = session(campus)
        assert run(campus, alice.read_file(f"{HOME}/seeded")) == b"pre-loaded bytes" * 20

    def test_read_only_clone_is_refused(self):
        campus = coded_campus()
        volume = campus.volume("u-alice")
        with pytest.raises(InvalidArgument):
            volume.clone("u-alice-ro")


# ----------------------------------------------------------------------
# degraded reads
# ----------------------------------------------------------------------

class TestDegradedReads:
    def test_contents_identical_with_zero_and_one_dead(self):
        # The satellite contract: virtual outputs identical with
        # 0, 1, ..., m dead servers.  Shape (2, 1) has m = 1.
        data = b"parity reconstructs me " * 40
        contents = []
        for dead in (0, 1):
            campus = coded_campus()
            alice = session(campus)
            run(campus, alice.write_file(f"{HOME}/f", data))
            entry = entry_for(campus)
            if dead:
                # Kill a *data* holder (slot 1) so a probe actually fails
                # and the read reconstructs from the parity fragment.
                campus.server(entry.replicas[1]).host.crash()
                settle(campus, 40.0)
            other = session(campus, ws=1)
            contents.append(run(campus, other.read_file(f"{HOME}/f")))
            degraded = sum(ws.venus.degraded_reads for ws in campus.workstations)
            assert degraded == (1 if dead else 0)
        assert contents[0] == contents[1] == data

    def test_custodian_crash_fails_over_and_reads_through(self):
        campus = coded_campus()
        alice = session(campus)
        data = b"survives custodian loss" * 30
        run(campus, alice.write_file(f"{HOME}/f", data))
        old = entry_for(campus).custodian
        campus.server(old).host.crash()
        settle(campus, 40.0)
        other = session(campus, ws=1)
        assert run(campus, other.read_file(f"{HOME}/f")) == data
        entry = entry_for(campus)
        assert entry.custodian != old
        # Promotion does not shrink the stripe: the dead slot stays
        # listed so its fragment index is preserved for rebuild.
        assert old in entry.replicas

    def test_more_than_m_dead_members_is_an_outage(self):
        campus = coded_campus()
        alice = session(campus)
        run(campus, alice.write_file(f"{HOME}/f", b"gone" * 100))
        entry = entry_for(campus)
        for name in entry.replicas[1:]:
            campus.server(name).host.crash()
        settle(campus, 40.0)
        other = session(campus, ws=1)
        with pytest.raises(ReproError):
            run(campus, other.read_file(f"{HOME}/f"))

    def test_write_succeeds_with_one_dead_member(self):
        campus = coded_campus()
        alice = session(campus)
        run(campus, alice.write_file(f"{HOME}/f", b"before"))
        entry = entry_for(campus)
        campus.server(entry.replicas[2]).host.crash()
        settle(campus, 40.0)
        run(campus, alice.write_file(f"{HOME}/f", b"after one death " * 20))
        other = session(campus, ws=1)
        assert run(campus, other.read_file(f"{HOME}/f")) == b"after one death " * 20


# ----------------------------------------------------------------------
# background rebuild
# ----------------------------------------------------------------------

class TestRebuild:
    def test_dead_slot_is_rebuilt_onto_a_spare(self):
        # Width 3 on 4 servers leaves one spare per stripe.
        campus = coded_campus(clusters=4)
        alice = session(campus)
        data = b"rebuild my fragment " * 50
        run(campus, alice.write_file(f"{HOME}/f", data))

        entry = entry_for(campus)
        victim = entry.replicas[1]
        campus.server(victim).host.crash()
        settle(campus, 60.0)

        controller = campus.replication_controller
        assert controller.rebuilds >= 1
        assert controller.rebuild_failures == 0
        entry = entry_for(campus)
        assert victim not in entry.replicas
        assert len(set(entry.replicas)) == 3
        # The whole campus is back to full stripe health even though
        # the crashed server is still down.
        assert stripe_health(campus) == 1.0
        repairs = sum(s.replication.stripe_repairs for s in campus.servers
                      if s.replication is not None)
        traffic = sum(s.replication.rebuild_bytes for s in campus.servers
                      if s.replication is not None)
        assert repairs >= 1
        assert traffic > 0
        # The rebuilt fragment actually serves reads.
        other = session(campus, ws=1)
        assert run(campus, other.read_file(f"{HOME}/f")) == data

    def test_rebuild_is_deterministic_under_a_seeded_plan(self):
        def one_run():
            campus = coded_campus(
                clusters=4,
                functional_payload_crypto=False,
                fault_plan=server_crash_plan(server="server1", at=100.0,
                                             outage=600.0, seed=3),
            )
            with campus.batch_setup():
                users = provision_campus(campus, hot_files=3, cold_files=3,
                                         shared_files=3, binary_files=2)
            summary = run_campus_day(campus, users, duration=300.0, warmup=60.0)
            controller = campus.replication_controller
            traffic = sum(s.replication.rebuild_bytes for s in campus.servers
                          if s.replication is not None)
            return (summary, controller.rebuilds, controller.rebuild_failures,
                    traffic, stripe_health(campus))

        first, second = one_run(), one_run()
        assert first == second
        assert first[1] >= 1  # the crash really triggered rebuilds

    def test_rejoin_rebuilds_the_returning_members_slots(self):
        campus = coded_campus()  # 3 servers, no spare: heal at rejoin
        alice = session(campus)
        data = b"heal me on rejoin " * 40
        run(campus, alice.write_file(f"{HOME}/f", data))

        entry = entry_for(campus)
        victim = entry.replicas[1]
        campus.server(victim).host.crash()
        settle(campus, 40.0)
        # No spare: the stripe stays degraded while the member is down.
        assert stripe_health(campus) < 1.0
        run(campus, alice.write_file(f"{HOME}/f", b"written while degraded" * 20))

        campus.server(victim).host.recover()
        settle(campus, 60.0)
        assert campus.replication_controller.rejoins == 1
        assert stripe_health(campus) == 1.0
        # The rejoined member's fragment reflects the degraded-window write.
        other = session(campus, ws=1)
        assert run(campus, other.read_file(f"{HOME}/f")) == b"written while degraded" * 20


# ----------------------------------------------------------------------
# byte-identity when erasure is off
# ----------------------------------------------------------------------

class TestByteIdentity:
    def test_plain_campus_never_imports_the_module(self):
        script = (
            "import sys; sys.path.insert(0, 'src'); sys.path.insert(0, 'tests')\n"
            "from helpers import small_campus, alice_session, run\n"
            "campus = small_campus()\n"
            "alice = alice_session(campus)\n"
            "run(campus, alice.write_file('/vice/usr/alice/f', b'plain'))\n"
            "assert run(campus, alice.read_file('/vice/usr/alice/f')) == b'plain'\n"
            "assert 'repro.vice.erasure' not in sys.modules, 'erasure imported'\n"
            "print('OK')\n"
        )
        result = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, text=True, cwd=".")
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout

    def test_plain_snapshots_and_location_records_have_no_new_keys(self):
        campus = small_campus()
        volume = campus.volume("u-alice")
        snap = volume.snapshot()
        assert set(snap) == {"volume_id", "name", "quota_bytes", "read_only",
                             "owner", "cloned_from", "nodes"}
        entry, _ = campus._location_master.resolve("/usr/alice")
        assert "erasure" not in entry.as_dict()

    def test_location_entry_round_trips_erasure(self):
        entry = LocationEntry(mount_path="/v", volume_id="v1",
                              custodian="server0",
                              replicas=["server0", "server1", "server2"],
                              erasure=[2, 1])
        record = entry.as_dict()
        assert record["erasure"] == [2, 1]
        back = LocationEntry.from_dict(record)
        assert back.erasure == [2, 1]
        assert back.replicas == entry.replicas


# ----------------------------------------------------------------------
# sharding fallback
# ----------------------------------------------------------------------

class TestShardFallback:
    def test_erasure_falls_back_to_single_process(self):
        from repro.sim.shard import ShardConfig
        from repro.system.config import SystemConfig
        from repro.system.itc import ITCSystem

        config = SystemConfig(
            mode="revised", clusters=3, workstations_per_cluster=2,
            functional_payload_crypto=False,
            erasure=ErasureConfig(data=2, parity=1),
            sharding=ShardConfig(workers=2),
        )
        campus = ITCSystem(config)
        with campus.batch_setup():
            users = provision_campus(campus, hot_files=2, cold_files=2,
                                     shared_files=2, binary_files=2)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            summary = run_campus_day(campus, users, duration=120.0, warmup=30.0)
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)
        fallback = campus.metrics.value("sim.shard.fallback")["value"]
        assert "erasure" in fallback
        assert summary["failures"] == 0
