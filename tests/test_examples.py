"""Every example script must run clean — they are executable documentation."""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
sys.path.insert(0, str(EXAMPLES_DIR))

FAST_EXAMPLES = [
    "quickstart",
    "user_mobility",
    "security_acl",
    "software_release",
    "heterogeneous_campus",
    "campus_operations",
    "chaos_day",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name, capsys):
    module = importlib.import_module(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100, f"{name} produced suspiciously little output"
    assert "Traceback" not in out


def test_quickstart_shows_cache_hit(capsys):
    importlib.import_module("quickstart").main()
    out = capsys.readouterr().out
    assert "server calls during the cache hit: 0" in out


def test_security_example_demonstrates_all_four_claims(capsys):
    importlib.import_module("security_acl").main()
    out = capsys.readouterr().out
    assert "wrong password -> AuthenticationFailure" in out
    assert "plaintext visible to the wiretap: False" in out
    assert "PermissionDenied" in out
    assert "howard is unaffected" in out


def test_mobility_example_shows_penalty_then_parity(capsys):
    importlib.import_module("user_mobility").main()
    out = capsys.readouterr().out
    assert "initial penalty" in out


def test_release_example_cuts_over(capsys):
    importlib.import_module("software_release").main()
    out = capsys.readouterr().out
    assert "release 2" in out


def test_andrew_example_runs(capsys):
    importlib.import_module("andrew_run").main()
    out = capsys.readouterr().out
    assert "Total" in out
    assert "remote" in out and "+87%" in out


def test_chaos_day_reports_outage_accounting(capsys):
    importlib.import_module("chaos_day").main()
    out = capsys.readouterr().out
    assert "campus availability:" in out
    assert "salvage passes" in out
    assert "MTTR" in out
