"""Unit tests for repro.faults: plans, injectors, scheduler, tracker.

The subsystem's contract is determinism: the same (config seed, fault
plan, workload) triple must replay the same campus byte-for-byte, and a
campus with no plan installed must behave exactly as if the subsystem did
not exist (zero-cost-when-off).
"""

import json

import pytest

from repro.errors import DiskError, InvalidArgument
from repro.faults import (
    ChaosConfig,
    Fault,
    FaultPlan,
    PRESETS,
    chaos_plan,
    clean_plan,
    flaky_campus_plan,
    lossy_backbone_plan,
    server_crash_plan,
)
from repro.net.link import LinkFaults
from repro.obs.availability import AvailabilityTracker
from repro.sim import Simulator
from repro.sim.rand import WorkloadRandom
from repro.storage.disk import Disk, DiskFaults
from repro.workload import provision_campus, run_campus_day
from tests.helpers import small_campus


# -- plan validation ---------------------------------------------------------


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meteor_strike", "server0", start=0.0, duration=1.0)

    def test_empty_target_rejected(self):
        with pytest.raises(ValueError, match="target"):
            Fault("server_crash", "", start=0.0, duration=1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Fault("server_crash", "server0", start=-1.0, duration=1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            Fault("server_crash", "server0", start=0.0, duration=0.0)

    @pytest.mark.parametrize("field", ["loss", "corrupt", "duplicate", "error_rate"])
    def test_rates_outside_unit_interval_rejected(self, field):
        with pytest.raises(ValueError, match="outside"):
            Fault("link", "backbone", start=0.0, duration=1.0, **{field: 1.5})

    def test_nonpositive_factors_rejected(self):
        with pytest.raises(ValueError, match="latency_factor"):
            Fault("disk", "server0", start=0.0, duration=1.0, latency_factor=0.0)
        with pytest.raises(ValueError, match="factor"):
            Fault("slow_cpu", "server0", start=0.0, duration=1.0, factor=-1.0)

    def test_end_property(self):
        fault = Fault("server_crash", "server0", start=10.0, duration=5.0)
        assert fault.end == 15.0


class TestPlanValidation:
    def test_overlapping_windows_same_target_rejected(self):
        with pytest.raises(ValueError, match="overlapping"):
            FaultPlan(faults=(
                Fault("server_crash", "server0", start=0.0, duration=10.0),
                Fault("server_crash", "server0", start=5.0, duration=10.0),
            ))

    def test_adjacent_windows_same_target_allowed(self):
        plan = FaultPlan(faults=(
            Fault("server_crash", "server0", start=0.0, duration=10.0),
            Fault("server_crash", "server0", start=10.0, duration=10.0),
        ))
        assert len(plan.faults) == 2

    def test_overlapping_windows_different_targets_allowed(self):
        plan = FaultPlan(faults=(
            Fault("server_crash", "server0", start=0.0, duration=10.0),
            Fault("server_crash", "server1", start=5.0, duration=10.0),
        ))
        assert len(plan.faults) == 2

    def test_overlapping_kinds_on_same_target_allowed(self):
        # A slow CPU and a sick disk on the same host may coexist.
        plan = FaultPlan(faults=(
            Fault("slow_cpu", "server0", start=0.0, duration=10.0, factor=0.5),
            Fault("disk", "server0", start=5.0, duration=10.0, error_rate=0.1),
        ))
        assert len(plan.faults) == 2

    def test_list_of_faults_coerced_to_tuple(self):
        plan = FaultPlan(faults=[
            Fault("server_crash", "server0", start=0.0, duration=1.0),
        ])
        assert isinstance(plan.faults, tuple)

    def test_is_empty(self):
        assert clean_plan().is_empty
        assert not server_crash_plan().is_empty
        assert not chaos_plan().is_empty

    def test_with_revalidates(self):
        plan = server_crash_plan()
        renamed = plan.with_(name="other")
        assert renamed.name == "other" and renamed.faults == plan.faults

    def test_chaos_validation(self):
        with pytest.raises(ValueError, match="positive"):
            ChaosConfig(mean_interval=0.0)
        with pytest.raises(ValueError, match="unknown chaos fault kind"):
            ChaosConfig(kinds=("gremlins",))
        with pytest.raises(ValueError, match="at least one"):
            ChaosConfig(kinds=())


class TestPlanRoundTrip:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_presets_round_trip_through_json(self, name):
        plan = PRESETS[name](seed=7)
        wire = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(wire) == plan

    def test_from_dict_validates(self):
        record = server_crash_plan().to_dict()
        record["faults"][0]["duration"] = -1.0
        with pytest.raises(ValueError):
            FaultPlan.from_dict(record)

    def test_preset_factories_accept_seed(self):
        for factory in PRESETS.values():
            assert factory(seed=42).seed == 42


# -- injectors ---------------------------------------------------------------


class TestLinkFaults:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="loss"):
            LinkFaults(WorkloadRandom(1), loss=2.0)

    def test_zero_rates_never_judge_a_fate(self):
        faults = LinkFaults(WorkloadRandom(1))
        assert all(faults.judge() == "ok" for _ in range(50))
        assert faults.stats == {"link_lost": 0, "link_corrupted": 0,
                                "link_duplicated": 0}

    def test_judgements_deterministic_per_seed(self):
        def sequence():
            faults = LinkFaults(WorkloadRandom(9), loss=0.2, corrupt=0.2,
                                duplicate=0.2)
            return [faults.judge() for _ in range(200)]

        fates = [sequence(), sequence()]
        assert fates[0] == fates[1]
        assert {"lost", "corrupted", "duplicated", "ok"} >= set(fates[0])
        assert len(set(fates[0])) > 1

    def test_stats_shared_and_counted(self):
        stats = {"link_lost": 0, "link_corrupted": 0, "link_duplicated": 0}
        faults = LinkFaults(WorkloadRandom(3), loss=1.0, stats=stats)
        assert faults.judge() == "lost"
        assert stats["link_lost"] == 1


class TestDiskFaults:
    def test_rate_validation(self):
        with pytest.raises(ValueError, match="error rate"):
            DiskFaults(WorkloadRandom(1), error_rate=-0.1)
        with pytest.raises(ValueError, match="latency_factor"):
            DiskFaults(WorkloadRandom(1), latency_factor=0.0)

    def test_certain_error_raises_and_pays_positioning(self):
        sim = Simulator()
        disk = Disk(sim, avg_seek=0.02, avg_rotation=0.01,
                    transfer_rate_bps=1_000_000)
        disk.faults = DiskFaults(WorkloadRandom(1), error_rate=1.0)

        def proc():
            with pytest.raises(DiskError):
                yield from disk.access(500_000)
            return sim.now

        elapsed = sim.run_until_complete(sim.process(proc()))
        # The arm moved (seek + rotation) but no transfer happened.
        assert elapsed == pytest.approx(0.03)
        assert disk.faults.stats["disk_errors"] == 1

    def test_latency_factor_multiplies_service_time(self):
        sim = Simulator()
        disk = Disk(sim, avg_seek=0.02, avg_rotation=0.01,
                    transfer_rate_bps=1_000_000)
        disk.faults = DiskFaults(WorkloadRandom(1), latency_factor=3.0)

        def proc():
            yield from disk.access(1_000_000)
            return sim.now

        elapsed = sim.run_until_complete(sim.process(proc()))
        assert elapsed == pytest.approx(3.0 * (0.03 + 1.0))

    def test_zero_rate_draws_nothing(self):
        faults = DiskFaults(WorkloadRandom(5), error_rate=0.0)
        before = faults.rng.random()
        faults2 = DiskFaults(WorkloadRandom(5), error_rate=0.0)
        assert not faults2.fails()
        # fails() with a zero rate must not consume the stream.
        assert faults2.rng.random() == before


# -- scheduler ---------------------------------------------------------------


def _campus_with_plan(plan, **overrides):
    return small_campus(clusters=2, workstations_per_cluster=1,
                        fault_plan=plan, **overrides)


class TestSchedulerWindows:
    def test_server_crash_window_applies_reverts_and_salvages(self):
        plan = server_crash_plan(server="server0", at=10.0, outage=20.0)
        campus = _campus_with_plan(plan)
        host = campus.server("server0").host
        tracker = campus.availability

        campus.sim.run(until=15.0)
        assert not host.up
        assert ("server_crash", "server0") in campus.fault_scheduler.active
        campus.sim.run(until=60.0)
        assert host.up
        assert not campus.fault_scheduler.active
        assert tracker.counters["faults_injected"] == 1
        assert tracker.counters["recoveries"] == 1
        assert tracker.counters["salvages"] == 1

    def test_link_window_installs_and_uninstalls_injector(self):
        plan = lossy_backbone_plan(start=10.0, duration=20.0)
        campus = _campus_with_plan(plan)
        segment = campus.network.segments["backbone"]

        assert segment.faults is None
        campus.sim.run(until=15.0)
        assert segment.faults is not None
        assert segment.faults.loss == pytest.approx(0.03)
        campus.sim.run(until=60.0)
        assert segment.faults is None
        assert campus.network._faulty_segments == 0

    def test_disk_and_slow_cpu_windows(self):
        plan = FaultPlan(name="hw", faults=(
            Fault("disk", "server1", start=5.0, duration=10.0,
                  error_rate=0.5, latency_factor=2.0),
            Fault("slow_cpu", "server1", start=5.0, duration=10.0, factor=0.5),
        ))
        campus = _campus_with_plan(plan)
        host = campus.server("server1").host
        rated = host.rated_cpu_speed

        campus.sim.run(until=8.0)
        assert host.disk.faults is not None
        assert host.cpu_speed == pytest.approx(rated * 0.5)
        campus.sim.run(until=30.0)
        assert host.disk.faults is None
        assert host.cpu_speed == rated

    def test_partition_window_cuts_and_heals(self):
        plan = FaultPlan(name="split", faults=(
            Fault("partition", "cluster1", start=5.0, duration=10.0),
        ))
        campus = _campus_with_plan(plan)
        campus.sim.run(until=8.0)
        assert "cluster1" in campus.network.partitioned
        campus.sim.run(until=30.0)
        assert not campus.network.partitioned

    def test_apply_skips_collisions(self):
        campus = _campus_with_plan(clean_plan())
        scheduler = campus.fault_scheduler
        fault = Fault("server_crash", "server0", start=0.0, duration=1.0)
        assert scheduler._apply(fault)
        # Same (kind, target) again: skipped, not stacked.
        assert not scheduler._apply(fault)
        campus.sim.run_until_complete(
            campus.sim.process(scheduler._revert(fault))
        )
        assert campus.server("server0").host.up

    def test_install_twice_rejected(self):
        campus = _campus_with_plan(clean_plan())
        with pytest.raises(InvalidArgument, match="already installed"):
            campus.install_faults(clean_plan())

    def test_chaos_injects_and_reverts_deterministically(self):
        def events():
            plan = chaos_plan(seed=3, mean_interval=30.0, mean_outage=10.0,
                              end=600.0)
            campus = _campus_with_plan(plan)
            campus.sim.run(until=1200.0)
            tracker = campus.availability
            assert tracker.counters["faults_injected"] > 0
            # Every injected fault was reverted (serial chaos loop).
            assert (tracker.counters["recoveries"]
                    == tracker.counters["faults_injected"])
            assert not campus.fault_scheduler.active
            return tracker.timeline()

        first, second = events(), events()
        assert first == second


# -- availability tracker ----------------------------------------------------


class TestAvailabilityTracker:
    def test_idle_tracker_reports_full_availability(self):
        tracker = AvailabilityTracker(Simulator())
        assert tracker.availability == 1.0
        summary = tracker.summary()
        assert summary["attempts"] == 0 and summary["outages"] == 0

    def test_episode_opens_on_failure_and_closes_on_success(self):
        tracker = AvailabilityTracker(Simulator())
        tracker.record_op("alice", False, now=10.0)
        tracker.record_op("alice", False, now=20.0)
        assert tracker.summary()["open_outages"] == 1
        tracker.record_op("alice", True, now=30.0)
        assert len(tracker.episodes) == 1
        episode = tracker.episodes[0]
        assert (episode.start, episode.end, episode.failures) == (10.0, 30.0, 2)
        assert tracker.mttr.mean == pytest.approx(20.0)
        assert tracker.summary()["open_outages"] == 0

    def test_episodes_are_per_user(self):
        tracker = AvailabilityTracker(Simulator())
        tracker.record_op("alice", False, now=10.0)
        tracker.record_op("bob", True, now=15.0)  # bob is fine
        tracker.record_op("alice", True, now=20.0)
        assert len(tracker.episodes) == 1
        per_user = tracker.per_user()
        assert per_user["alice"]["availability"] == pytest.approx(0.5)
        assert per_user["bob"]["availability"] == 1.0

    def test_ttfs_measured_from_recovery_to_next_success(self):
        tracker = AvailabilityTracker(Simulator())
        tracker.record_fault("server_crash", "server0", now=10.0)
        tracker.record_recovery("server_crash", "server0", now=50.0)
        tracker.record_op("alice", True, now=57.5)
        assert len(tracker.ttfs) == 1
        assert tracker.ttfs.mean == pytest.approx(7.5)
        # Only the first success after a recovery stops the clock.
        tracker.record_op("alice", True, now=90.0)
        assert len(tracker.ttfs) == 1

    def test_timeline_is_time_ordered_and_honest_about_open_episodes(self):
        tracker = AvailabilityTracker(Simulator())
        tracker.record_fault("server_crash", "server0", now=10.0)
        tracker.record_op("alice", False, now=12.0)
        tracker.record_recovery("server_crash", "server0", now=40.0)
        events = tracker.timeline()
        assert [e["t"] for e in events] == sorted(e["t"] for e in events)
        open_events = [e for e in events if e["event"] == "outage"]
        assert len(open_events) == 1 and open_events[0]["end"] is None

    def test_write_timeline(self, tmp_path):
        tracker = AvailabilityTracker(Simulator())
        tracker.record_fault("disk", "server0", now=5.0, error_rate=0.1)
        path = tmp_path / "timeline.json"
        assert tracker.write_timeline(str(path)) == 1
        record = json.loads(path.read_text())
        assert record["events"][0]["kind"] == "disk"
        assert record["summary"]["events"]["faults_injected"] == 1


# -- end-to-end determinism and zero-cost-when-off ---------------------------


def _flaky_day(seed=5):
    plan = FaultPlan(name="mini-flaky", seed=seed, faults=(
        Fault("link", "backbone", start=30.0, duration=200.0,
              loss=0.05, corrupt=0.02, duplicate=0.02),
        Fault("server_crash", "server0", start=120.0, duration=60.0),
    ))
    campus = small_campus(clusters=2, workstations_per_cluster=2,
                          fault_plan=plan, functional_payload_crypto=False)
    users = provision_campus(campus, hot_files=4, cold_files=4,
                             shared_files=4, binary_files=3)
    summary = run_campus_day(campus, users, duration=300.0, warmup=60.0)
    return campus, summary


class TestDeterminism:
    def test_identical_runs_replay_byte_identically(self):
        first_campus, first = _flaky_day()
        second_campus, second = _flaky_day()
        assert first_campus.sim.now == second_campus.sim.now
        assert first["availability"] == second["availability"]
        assert (first_campus.availability.timeline()
                == second_campus.availability.timeline())
        assert first_campus.fault_scheduler.stats == second_campus.fault_scheduler.stats

    def test_different_plan_seed_changes_injections(self):
        first_campus, _ = _flaky_day(seed=5)
        second_campus, _ = _flaky_day(seed=6)
        assert (first_campus.fault_scheduler.stats
                != second_campus.fault_scheduler.stats)


class TestZeroCostWhenOff:
    def test_no_plan_leaves_no_trace(self):
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        assert campus.availability is None
        assert campus.fault_scheduler is None
        assert all(segment.faults is None
                   for segment in campus.network.segments.values())
        assert campus.network._faulty_segments == 0
        assert all(server.host.disk.faults is None for server in campus.servers)
        snapshot = campus.metrics.snapshot()
        assert not any(name.startswith(("availability.", "faults."))
                       for name in snapshot)

    def test_installed_clean_plan_registers_instruments(self):
        campus = _campus_with_plan(clean_plan())
        snapshot = campus.metrics.snapshot()
        assert "availability.ratio" in snapshot
        assert "faults.active" in snapshot
