"""Protocol-level tests of the Vice file service: edge and error cases.

These drive the RPC procedures directly through a Venus connection, below
the Workstation layer, to pin down wire-level semantics.
"""

import pytest

from repro.errors import (
    CrossDeviceLink,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"


def raw_call(campus, ws, procedure, args, payload=b""):
    """One raw authenticated RPC from a workstation's Venus node."""
    venus = campus.workstation(ws).venus

    def go():
        conn = yield from venus._conn("alice", "server0")
        return (yield from venus.node.call(conn, procedure, args, payload=payload))

    return run(campus, go())


@pytest.fixture
def campus():
    c = small_campus()
    session = alice_session(c)
    run(c, session.write_file(f"{HOME}/file.txt", b"contents"))
    run(c, session.mkdir(f"{HOME}/dir"))
    return c


class TestFetchStoreEdges:
    def test_fetch_of_directory_rejected(self, campus):
        fid = campus.volume("u-alice").fid_of("/dir")
        with pytest.raises(IsADirectory):
            raw_call(campus, 0, "FetchByFid", {"fid": fid})

    def test_fetch_unknown_fid(self, campus):
        with pytest.raises(FileNotFound):
            raw_call(campus, 0, "FetchByFid", {"fid": "u-alice.99999"})

    def test_malformed_fid(self, campus):
        with pytest.raises(InvalidArgument):
            raw_call(campus, 0, "FetchByFid", {"fid": "garbage"})

    def test_store_returns_fresh_status(self, campus):
        volume = campus.volume("u-alice")
        fid = volume.fid_of("/file.txt")
        before = volume.resolve("/file.txt").version
        result, _ = raw_call(campus, 0, "StoreByFid", {"fid": fid}, payload=b"new")
        assert result["size"] == 3
        assert result["version"] == before + 1

    def test_fetch_returns_exact_bytes(self, campus):
        fid = campus.volume("u-alice").fid_of("/file.txt")
        result, data = raw_call(campus, 0, "FetchByFid", {"fid": fid})
        assert data == b"contents"
        assert result["size"] == len(data)

    def test_create_by_fid_in_missing_parent(self, campus):
        with pytest.raises(FileNotFound):
            raw_call(campus, 0, "CreateByFid",
                     {"parent": "u-alice.424242", "name": "x"}, payload=b"d")


class TestDirectoryProtocol:
    def test_fetch_dir_lists_entries_with_fids(self, campus):
        root_fid = "u-alice.1"
        result, _ = raw_call(campus, 0, "FetchDir", {"fid": root_fid})
        assert set(result["entries"]) == {"file.txt", "dir"}
        assert result["entries"]["dir"]["type"] == "directory"
        assert result["entries"]["file.txt"]["fid"].startswith("u-alice.")

    def test_fetch_dir_of_file_rejected(self, campus):
        fid = campus.volume("u-alice").fid_of("/file.txt")
        with pytest.raises(NotADirectory):
            raw_call(campus, 0, "FetchDir", {"fid": fid})

    def test_lookup_vnode_hit_and_miss(self, campus):
        result, _ = raw_call(campus, 0, "LookupVnode",
                             {"fid": "u-alice.1", "name": "file.txt"})
        assert result["type"] == "file"
        with pytest.raises(FileNotFound):
            raw_call(campus, 0, "LookupVnode", {"fid": "u-alice.1", "name": "ghost"})

    def test_remove_dir_with_contents_rejected(self, campus):
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/dir/inner", b"x"))
        from repro.errors import DirectoryNotEmpty

        with pytest.raises(DirectoryNotEmpty):
            raw_call(campus, 0, "RemoveDirByFid", {"parent": "u-alice.1", "name": "dir"})

    def test_rename_across_volumes_rejected(self, campus):
        campus.create_volume("/other", custodian=0, volume_id="other", owner="alice")
        with pytest.raises(CrossDeviceLink):
            raw_call(campus, 0, "RenameByFid", {
                "old_parent": "u-alice.1", "old_name": "file.txt",
                "new_parent": "other.1", "new_name": "file.txt",
            })


class TestValidateProtocol:
    def test_validate_current_version(self, campus):
        volume = campus.volume("u-alice")
        node = volume.resolve("/file.txt")
        fid = volume.fid_of("/file.txt")
        result, _ = raw_call(campus, 0, "ValidateByFid",
                             {"fid": fid, "version": node.version})
        assert result["valid"] is True

    def test_validate_stale_version(self, campus):
        fid = campus.volume("u-alice").fid_of("/file.txt")
        result, _ = raw_call(campus, 0, "ValidateByFid", {"fid": fid, "version": 0})
        assert result["valid"] is False
        assert result["exists"] is True

    def test_validate_deleted_file(self, campus):
        fid = campus.volume("u-alice").fid_of("/file.txt")
        session = alice_session(campus)
        run(campus, session.unlink(f"{HOME}/file.txt"))
        result, _ = raw_call(campus, 0, "ValidateByFid", {"fid": fid, "version": 2})
        assert result["exists"] is False
        assert result["valid"] is False


class TestStatusRecord:
    def test_status_fields_complete(self, campus):
        fid = campus.volume("u-alice").fid_of("/file.txt")
        result, _ = raw_call(campus, 0, "GetStatusByFid", {"fid": fid})
        for field in ("fid", "type", "size", "version", "mtime", "owner",
                      "mode", "rights", "read_only"):
            assert field in result
        assert result["owner"] == "alice"
        assert result["read_only"] is False
        assert set("rl") <= set(result["rights"])

    def test_get_custodian_returns_entry(self, campus):
        result, _ = raw_call(campus, 0, "GetCustodian", {"path": "/usr/alice/file.txt"})
        assert result["custodian"] == "server0"
        assert result["mount_path"] == "/usr/alice"
        assert result["volume_id"] == "u-alice"


class TestPrototypeProtocolRestrictions:
    def test_prototype_refuses_symlink_and_dir_rename(self):
        campus = small_campus(mode="prototype")
        session = alice_session(campus)
        run(campus, session.mkdir(f"{HOME}/d"))
        venus = campus.workstation(0).venus

        def go(proc, args):
            conn = yield from venus._conn("alice", "server0")
            return (yield from venus.node.call(conn, proc, args))

        with pytest.raises(InvalidArgument):
            run(campus, go("MakeSymlink", {"path": "/usr/alice/l", "target": "/x"}))
        with pytest.raises(InvalidArgument):
            run(campus, go("Rename", {"old": "/usr/alice/d", "new": "/usr/alice/e"}))

    def test_prototype_file_rename_allowed(self):
        campus = small_campus(mode="prototype")
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/a", b"x"))
        run(campus, session.rename(f"{HOME}/a", f"{HOME}/b"))
        assert run(campus, session.read_file(f"{HOME}/b")) == b"x"
