"""Unit tests for the Host machine model and the error hierarchy."""

import pytest

from repro import errors
from repro.hosts import Host
from repro.net import Network
from repro.sim import Simulator


@pytest.fixture
def host():
    sim = Simulator()
    net = Network(sim)
    net.add_segment("lan")
    return Host(sim, net, "node", "lan", cpu_speed=2.0)


class TestHost:
    def test_compute_scales_with_speed(self, host):
        sim = host.sim

        def work():
            yield from host.compute(10.0)  # reference seconds
            return sim.now

        # Speed 2.0: the work takes half the reference time.
        assert sim.run_until_complete(sim.process(work())) == pytest.approx(5.0)

    def test_zero_compute_is_free(self, host):
        sim = host.sim

        def work():
            yield from host.compute(0.0)
            yield sim.timeout(0)
            return sim.now

        assert sim.run_until_complete(sim.process(work())) == 0.0

    def test_cpu_utilization_window(self, host):
        sim = host.sim

        def work():
            yield from host.compute(20.0)  # 10s busy at speed 2
            yield sim.timeout(10.0)

        sim.process(work())
        sim.run()
        assert host.cpu_utilization(0.0, 20.0) == pytest.approx(0.5)

    def test_crash_and_recover_flag(self, host):
        assert host.up
        host.crash()
        assert not host.up
        host.recover()
        assert host.up

    def test_invalid_speed_rejected(self, host):
        with pytest.raises(ValueError):
            Host(host.sim, host.network, "bad", "lan", cpu_speed=0.0)

    def test_concurrent_compute_serializes_on_cpu(self, host):
        sim = host.sim
        done = []

        def work(tag):
            yield from host.compute(10.0)
            done.append((tag, sim.now))

        sim.process(work("a"))
        sim.process(work("b"))
        sim.run()
        assert done == [("a", 5.0), ("b", 10.0)]


class TestErrorHierarchy:
    def test_all_library_errors_are_repro_errors(self):
        for name in ("FileNotFound", "PermissionDenied", "VolumeOffline",
                     "AuthenticationFailure", "LockConflict", "QuotaExceeded"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_filesystem_errors_carry_errno_names(self):
        assert errors.FileNotFound.errno_name == "ENOENT"
        assert errors.FileExists.errno_name == "EEXIST"
        assert errors.NotADirectory.errno_name == "ENOTDIR"
        assert errors.IsADirectory.errno_name == "EISDIR"
        assert errors.DirectoryNotEmpty.errno_name == "ENOTEMPTY"
        assert errors.QuotaExceeded.errno_name == "EDQUOT"
        assert errors.ReadOnlyFileSystem.errno_name == "EROFS"

    def test_not_custodian_carries_hint(self):
        exc = errors.NotCustodian("server3")
        assert exc.custodian_hint == "server3"

    def test_interrupt_carries_cause(self):
        exc = errors.Interrupt("preempted")
        assert exc.cause == "preempted"

    def test_security_errors_separate_from_filesystem(self):
        assert not issubclass(errors.AuthenticationFailure, errors.FileSystemError)
        assert not issubclass(errors.FileNotFound, errors.SecurityError)
