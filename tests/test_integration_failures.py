"""Integration: failures — server crashes, partitions, workstation crashes.

The availability goal (§2.2): "single point network or machine failures
should not affect the entire user community; we are willing to accept
temporary loss of service to small groups of users."
"""

import pytest

from repro.errors import ServerUnavailable
from repro.faults import Fault, FaultPlan
from repro.rpc.costs import RpcCosts
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"

FAST_TIMEOUTS = RpcCosts(retransmit_timeout=0.5, max_retries=1)


def impatient_campus(**overrides):
    return small_campus(rpc_costs=FAST_TIMEOUTS, **overrides)


class TestServerCrash:
    def test_crashed_server_loses_its_users_only(self):
        campus = impatient_campus(clusters=2, workstations_per_cluster=1)
        campus.add_user("bob", "bob-pw")
        campus.create_user_volume("bob", cluster=1)
        alice = alice_session(campus, "ws0-0")
        bob = campus.login("ws1-0", "bob", "bob-pw")
        run(campus, alice.write_file(f"{HOME}/f", b"a"))
        run(campus, bob.write_file("/vice/usr/bob/f", b"b"))

        campus.server(0).host.crash()
        campus.workstation("ws0-0").venus.cache.invalidate_all()
        with pytest.raises(ServerUnavailable):
            run(campus, alice.read_file(f"{HOME}/f"))
        # Bob, on the other cluster, is untouched.
        assert run(campus, bob.read_file("/vice/usr/bob/f")) == b"b"

    def test_cached_files_survive_server_outage(self):
        """Whole-file caching gives a modicum of availability: files already
        cached remain readable while the custodian is down (callback mode
        trusts them until broken)."""
        campus = impatient_campus()
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"cached copy"))
        run(campus, session.read_file(f"{HOME}/f"))
        campus.server(0).host.crash()
        assert run(campus, session.read_file(f"{HOME}/f")) == b"cached copy"

    def test_server_recovery_restores_service(self):
        campus = impatient_campus()
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"v1"))
        campus.server(0).host.crash()
        campus.workstation(0).venus.cache.invalidate_all()
        with pytest.raises(ServerUnavailable):
            run(campus, session.read_file(f"{HOME}/f"))
        campus.server(0).host.recover()
        assert run(campus, session.read_file(f"{HOME}/f")) == b"v1"

    def test_store_during_outage_fails_cleanly(self):
        campus = impatient_campus()
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"v1"))
        campus.server(0).host.crash()
        with pytest.raises(ServerUnavailable):
            run(campus, session.write_file(f"{HOME}/f", b"v2"))
        campus.server(0).host.recover()
        # The old version is intact on the server.
        assert campus.server(0).volumes["u-alice"].read("/f") == b"v1"


class TestPartition:
    def test_partitioned_cluster_cut_off(self):
        campus = impatient_campus(clusters=2, workstations_per_cluster=1)
        session = alice_session(campus, "ws1-0")  # other cluster than server0
        run(campus, session.write_file(f"{HOME}/f", b"x"))
        campus.network.partition("cluster1")
        campus.workstation("ws1-0").venus.cache.invalidate_all()
        with pytest.raises(Exception):
            run(campus, session.read_file(f"{HOME}/f"))
        campus.network.heal("cluster1")
        assert run(campus, session.read_file(f"{HOME}/f")) == b"x"

    def test_intra_cluster_unaffected_by_partition(self):
        campus = impatient_campus(clusters=2, workstations_per_cluster=1)
        local = alice_session(campus, "ws0-0")
        campus.network.partition("cluster1")
        run(campus, local.write_file(f"{HOME}/f", b"still fine"))
        assert run(campus, local.read_file(f"{HOME}/f")) == b"still fine"


class TestWorkstationCrash:
    def test_dirty_data_lost_but_server_consistent(self):
        """Store-on-close means a crash loses at most the open files'
        changes — the rationale for write-through (§3.2)."""
        campus = impatient_campus()
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"committed"))
        ws = campus.workstation(0)
        fd = run(campus, session.open(f"{HOME}/f", "r+"))
        run(campus, session.write(fd, b"UNCOMMITTED"))
        ws.crash()  # before close: the write never reached Vice
        ws.recover()
        assert campus.server(0).volumes["u-alice"].read("/f") == b"committed"
        assert run(campus, session.read_file(f"{HOME}/f")) == b"committed"

    def test_recovered_workstation_revalidates(self):
        campus = impatient_campus(workstations_per_cluster=2)
        crasher = alice_session(campus, 0)
        other = alice_session(campus, 1)
        run(campus, crasher.read_file.__self__.write_file(f"{HOME}/f", b"v1"))
        run(campus, crasher.read_file(f"{HOME}/f"))
        ws = campus.workstation(0)
        ws.crash()
        # While ws0 is dark, the file changes; its callback break is lost.
        run(campus, other.write_file(f"{HOME}/f", b"v2"))
        ws.recover()  # recovery invalidates all cached entries
        assert run(campus, crasher.read_file(f"{HOME}/f")) == b"v2"

    def test_break_to_dead_workstation_does_not_block_store(self):
        campus = impatient_campus(workstations_per_cluster=2)
        holder = alice_session(campus, 0)
        writer = alice_session(campus, 1)
        run(campus, writer.write_file(f"{HOME}/f", b"v1"))
        run(campus, holder.read_file(f"{HOME}/f"))  # holder takes a callback
        campus.workstation(0).host.crash()
        # The store must complete despite the unreachable callback holder.
        run(campus, writer.write_file(f"{HOME}/f", b"v2"))
        assert campus.server(0).volumes["u-alice"].read("/f") == b"v2"


class TestLossyNetwork:
    def test_whole_stack_survives_packet_loss(self):
        lossy = RpcCosts(loss_probability=0.15, retransmit_timeout=0.5, max_retries=8)
        campus = small_campus(rpc_costs=lossy)
        session = alice_session(campus, 0)
        for index in range(5):
            run(campus, session.write_file(f"{HOME}/f{index}", b"data%d" % index))
        for index in range(5):
            assert run(campus, session.read_file(f"{HOME}/f{index}")) == b"data%d" % index


class TestFaultPlanScenarios:
    """The repro.faults scheduler reproduces the hand-rolled failure stories.

    Same observable sequence whether the partition/crash is injected by a
    declarative :class:`FaultPlan` window or by calling
    ``network.partition``/``host.crash`` directly from a process — the
    scheduler is sugar over the same primitives, not a new failure model.
    """

    def _partition_story(self, campus):
        """Write before the window, fail inside it, read back after heal."""
        session = alice_session(campus, "ws1-0")  # other cluster than server0
        run(campus, session.write_file(f"{HOME}/f", b"x"))
        campus.sim.run(until=120.0)  # inside the partition window
        assert "cluster1" in campus.network.partitioned
        campus.workstation("ws1-0").venus.cache.invalidate_all()
        with pytest.raises(Exception):
            run(campus, session.read_file(f"{HOME}/f"))
        campus.sim.run(until=250.0)  # healed
        assert not campus.network.partitioned
        return run(campus, session.read_file(f"{HOME}/f"))

    def test_bridge_partition_then_heal_via_plan(self):
        plan = FaultPlan(name="bridge-outage", faults=(
            Fault("partition", "cluster1", start=100.0, duration=100.0),
        ))
        campus = impatient_campus(clusters=2, workstations_per_cluster=1,
                                  fault_plan=plan)
        assert self._partition_story(campus) == b"x"
        tracker = campus.availability
        assert tracker.counters["faults_injected"] == 1
        assert tracker.counters["recoveries"] == 1

    def test_bridge_partition_then_heal_hand_rolled_parity(self):
        campus = impatient_campus(clusters=2, workstations_per_cluster=1)

        def orchestrate():
            yield campus.sim.timeout(100.0)
            campus.network.partition("cluster1")
            yield campus.sim.timeout(100.0)
            campus.network.heal("cluster1")

        campus.sim.process(orchestrate(), name="manual-faults")
        assert self._partition_story(campus) == b"x"

    def test_double_fault_server_crash_during_partition(self):
        """A crash inside a partition window: the stranded cluster keeps
        serving its own users, the crashed custodian's users wait for both
        reverts, and the tracker sees two faults and one salvage."""
        plan = FaultPlan(name="double-fault", faults=(
            Fault("partition", "cluster1", start=100.0, duration=150.0),
            Fault("server_crash", "server0", start=120.0, duration=60.0),
        ))
        campus = impatient_campus(clusters=2, workstations_per_cluster=1,
                                  fault_plan=plan)
        campus.add_user("bob", "bob-pw")
        campus.create_user_volume("bob", cluster=1)
        alice = alice_session(campus, "ws0-0")
        bob = campus.login("ws1-0", "bob", "bob-pw")
        run(campus, alice.write_file(f"{HOME}/f", b"v1"))
        run(campus, bob.write_file("/vice/usr/bob/f", b"b1"))

        campus.sim.run(until=130.0)  # both faults live
        assert len(campus.fault_scheduler.active) == 2
        campus.workstation("ws0-0").venus.cache.invalidate_all()
        with pytest.raises(ServerUnavailable):
            run(campus, alice.read_file(f"{HOME}/f"))
        # Bob's whole world is inside the partitioned cluster: untouched.
        assert run(campus, bob.read_file("/vice/usr/bob/f")) == b"b1"

        campus.sim.run(until=300.0)  # crash reverted, partition healed
        assert not campus.fault_scheduler.active
        assert run(campus, alice.read_file(f"{HOME}/f")) == b"v1"
        tracker = campus.availability
        assert tracker.counters["faults_injected"] == 2
        assert tracker.counters["recoveries"] == 2
        assert tracker.counters["salvages"] == 1


class TestPartitionedClusterAutonomy:
    def test_cut_off_cluster_keeps_serving_its_own_users(self):
        """Clusters are "semi-autonomous" (§2.3): a backbone-bridge failure
        strands a cluster but its users and their cluster server carry on."""
        campus = impatient_campus(clusters=2, workstations_per_cluster=1)
        campus.add_user("bob", "bob-pw")
        campus.create_user_volume("bob", cluster=1)
        bob = campus.login("ws1-0", "bob", "bob-pw")
        run(campus, bob.write_file("/vice/usr/bob/f", b"local work"))

        campus.network.partition("cluster1")
        # bob's whole world is inside cluster1: nothing changes for him.
        run(campus, bob.write_file("/vice/usr/bob/g", b"still working"))
        assert run(campus, bob.read_file("/vice/usr/bob/g")) == b"still working"
        # But alice's files (cluster 0 custodian) are unreachable from there.
        campus.workstation("ws1-0").venus.login("alice", "alice-pw")
        alice_away = campus.login("ws1-0", "alice", "alice-pw")
        with pytest.raises(Exception):
            run(campus, alice_away.read_file(f"{HOME}/anything"))
