"""Integration: the protection server (§3.4, §3.5.2) and replication."""

import pytest

from repro.errors import PermissionDenied, UnknownPrincipal
from repro.crypto import derive_user_key
from repro.vice.protserver import ADMIN_GROUP, ProtectionServer, manual_update
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"


def campus_with_protserver():
    campus = small_campus(clusters=2, workstations_per_cluster=1)
    campus.add_group(ADMIN_GROUP, members=["alice"])
    ProtectionServer(campus.server(0))
    return campus


def prot_call(campus, ws, username, password, procedure, args):
    """Drive one protection-server RPC from a workstation."""
    workstation = campus.workstation(ws)
    workstation.login(username, password)
    venus = workstation.venus

    def go():
        conn = yield from venus._conn(username, "server0")
        result, _ = yield from venus.node.call(conn, procedure, args)
        return result

    return run(campus, go())


class TestProtectionServer:
    def test_add_user_replicates_everywhere(self):
        campus = campus_with_protserver()
        key = derive_user_key("newbie", "pw")
        prot_call(campus, 0, "alice", "alice-pw", "ProtAddUser",
                  {"username": "newbie", "key": key})
        for server in campus.servers:
            assert server.protection.is_user("newbie")
            assert server.protection.user_key("newbie") == key

    def test_new_user_can_immediately_authenticate_anywhere(self):
        campus = campus_with_protserver()
        campus.create_volume("/usr/newbie", custodian=1, volume_id="u-newbie", owner="newbie")
        prot_call(campus, 0, "alice", "alice-pw", "ProtAddUser",
                  {"username": "newbie", "key": derive_user_key("newbie", "pw")})
        session = campus.login("ws1-0", "newbie", "pw")
        run(campus, session.write_file("/vice/usr/newbie/hello", b"hi"))

    def test_group_membership_via_protocol(self):
        campus = campus_with_protserver()
        prot_call(campus, 0, "alice", "alice-pw", "ProtAddUser",
                  {"username": "bob", "key": derive_user_key("bob", "bob-pw")})
        prot_call(campus, 0, "alice", "alice-pw", "ProtAddGroup", {"group": "team"})
        prot_call(campus, 0, "alice", "alice-pw", "ProtAddMember",
                  {"group": "team", "member": "bob"})
        for server in campus.servers:
            assert "team" in server.protection.cps("bob")

    def test_remove_member_propagates(self):
        campus = campus_with_protserver()
        prot_call(campus, 0, "alice", "alice-pw", "ProtAddGroup", {"group": "g"})
        prot_call(campus, 0, "alice", "alice-pw", "ProtAddMember",
                  {"group": "g", "member": "alice"})
        prot_call(campus, 0, "alice", "alice-pw", "ProtRemoveMember",
                  {"group": "g", "member": "alice"})
        for server in campus.servers:
            assert "g" not in server.protection.cps("alice")

    def test_non_admin_rejected(self):
        campus = campus_with_protserver()
        campus.add_user("pleb", "pw")
        with pytest.raises(PermissionDenied):
            prot_call(campus, 1, "pleb", "pw", "ProtAddGroup", {"group": "sneaky"})

    def test_remove_user_revokes_authentication(self):
        campus = campus_with_protserver()
        campus.add_user("doomed", "pw")
        prot_call(campus, 0, "alice", "alice-pw", "ProtRemoveUser", {"username": "doomed"})
        from repro.errors import AuthenticationFailure

        session = campus.login("ws1-0", "doomed", "pw")
        with pytest.raises(AuthenticationFailure):
            run(campus, session.listdir("/vice/usr"))

    def test_unknown_member_surfaces_error(self):
        campus = campus_with_protserver()
        prot_call(campus, 0, "alice", "alice-pw", "ProtAddGroup", {"group": "g"})
        with pytest.raises(UnknownPrincipal):
            prot_call(campus, 0, "alice", "alice-pw", "ProtAddMember",
                      {"group": "g", "member": "ghost"})


class TestManualUpdate:
    def test_prototype_operations_staff_path(self):
        """§3.5.2: the prototype had no protection server — operations
        staff edited every replica by hand."""
        campus = small_campus(mode="prototype", clusters=2, workstations_per_cluster=1)
        manual_update(
            campus.servers,
            lambda db: db.add_user("manual", derive_user_key("manual", "pw")),
        )
        for server in campus.servers:
            assert server.protection.is_user("manual")
