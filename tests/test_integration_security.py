"""Integration: the security design end to end (§3.4).

Authentication, access lists, negative rights and wire encryption exercised
through the full workstation/Venus/RPC/Vice stack — with workstations and
the network treated as untrusted, exactly as the paper demands.
"""

import pytest

from repro.errors import AuthenticationFailure, NotAuthenticated, PermissionDenied
from repro.vice.protection import AccessList
from tests.helpers import run, small_campus

HOME = "/vice/usr/alice"


@pytest.fixture
def campus():
    campus = small_campus(clusters=1, workstations_per_cluster=3)
    campus.add_user("bob", "bob-pw")
    campus.add_user("mallory", "mallory-pw")
    return campus


class TestAuthentication:
    def test_wrong_password_cannot_touch_vice(self, campus):
        session = campus.login(0, "alice", "WRONG")
        with pytest.raises(AuthenticationFailure):
            run(campus, session.read_file(f"{HOME}/anything"))

    def test_unregistered_user_rejected(self, campus):
        session = campus.login(0, "eve", "whatever")
        with pytest.raises(AuthenticationFailure):
            run(campus, session.listdir("/vice/usr"))

    def test_no_login_no_access(self, campus):
        ws = campus.workstation(0)

        def go():
            yield from ws.venus.stat("ghost", "/usr/alice")

        with pytest.raises(NotAuthenticated):
            run(campus, go())

    def test_logout_severs_access(self, campus):
        session = campus.login(0, "alice", "alice-pw")
        run(campus, session.write_file(f"{HOME}/f", b"x"))
        session.logout()
        with pytest.raises(NotAuthenticated):
            run(campus, session.stat(f"{HOME}/f"))

    def test_two_users_on_one_workstation(self, campus):
        alice = campus.login(0, "alice", "alice-pw")
        bob = campus.login(0, "bob", "bob-pw")
        run(campus, alice.write_file(f"{HOME}/af", b"alice data"))
        # Bob reads through anyuser rl on alice's tree.
        assert run(campus, bob.read_file(f"{HOME}/af")) == b"alice data"


class TestAccessControl:
    def test_default_acl_denies_foreign_writes(self, campus):
        bob = campus.login(0, "bob", "bob-pw")
        with pytest.raises(PermissionDenied):
            run(campus, bob.write_file(f"{HOME}/intrusion", b"x"))

    def test_owner_can_grant_write_via_acl(self, campus):
        alice = campus.login(0, "alice", "alice-pw")
        bob = campus.login(1, "bob", "bob-pw")
        run(campus, alice.mkdir(f"{HOME}/shared"))
        acl = run(campus, alice.get_acl(f"{HOME}/shared"))
        acl["positive"]["bob"] = "rliwd"
        run(campus, alice.set_acl(f"{HOME}/shared", acl))
        run(campus, bob.write_file(f"{HOME}/shared/from-bob", b"hello"))
        assert run(campus, alice.read_file(f"{HOME}/shared/from-bob")) == b"hello"

    def test_group_grant_reaches_indirect_members(self, campus):
        campus.add_group("project")
        campus.add_group("team")
        campus.add_member("team", "bob")
        campus.add_member("project", "team")  # bob ∈ team ∈ project
        alice = campus.login(0, "alice", "alice-pw")
        bob = campus.login(1, "bob", "bob-pw")
        run(campus, alice.mkdir(f"{HOME}/proj"))
        acl = run(campus, alice.get_acl(f"{HOME}/proj"))
        acl["positive"]["project"] = "rliw"
        run(campus, alice.set_acl(f"{HOME}/proj", acl))
        run(campus, bob.write_file(f"{HOME}/proj/notes", b"via nested group"))

    def test_negative_rights_revoke_rapidly(self, campus):
        """§3.4: negative rights limit the damage from an untrustworthy
        user without waiting for group updates to propagate."""
        campus.add_group("project", members=["mallory", "bob"])
        alice = campus.login(0, "alice", "alice-pw")
        mallory = campus.login(1, "mallory", "mallory-pw")
        run(campus, alice.mkdir(f"{HOME}/proj"))
        acl = run(campus, alice.get_acl(f"{HOME}/proj"))
        acl["positive"]["project"] = "rliw"
        run(campus, alice.set_acl(f"{HOME}/proj", acl))
        run(campus, mallory.write_file(f"{HOME}/proj/ok", b"fine so far"))
        # Mallory turns out to be untrustworthy; alice adds negative rights.
        acl = run(campus, alice.get_acl(f"{HOME}/proj"))
        acl.setdefault("negative", {})["mallory"] = "rliwdak"
        run(campus, alice.set_acl(f"{HOME}/proj", acl))
        with pytest.raises(PermissionDenied):
            run(campus, mallory.read_file(f"{HOME}/proj/ok"))
        # Bob, also in the group, is unaffected.
        bob = campus.login(2, "bob", "bob-pw")
        assert run(campus, bob.read_file(f"{HOME}/proj/ok")) == b"fine so far"

    def test_acl_administration_needs_a_right(self, campus):
        alice = campus.login(0, "alice", "alice-pw")
        bob = campus.login(1, "bob", "bob-pw")
        run(campus, alice.mkdir(f"{HOME}/locked"))
        stolen = run(campus, alice.get_acl(f"{HOME}/locked"))
        stolen["positive"]["bob"] = "rwidlak"
        with pytest.raises(PermissionDenied):
            run(campus, bob.set_acl(f"{HOME}/locked", stolen))

    def test_listing_needs_lookup_right(self, campus):
        alice = campus.login(0, "alice", "alice-pw")
        mallory = campus.login(1, "mallory", "mallory-pw")
        run(campus, alice.mkdir(f"{HOME}/private"))
        acl = {"positive": {"alice": "rwidlak"}, "negative": {}}
        run(campus, alice.set_acl(f"{HOME}/private", acl))
        run(campus, alice.write_file(f"{HOME}/private/secret", b"s"))
        with pytest.raises(PermissionDenied):
            run(campus, mallory.listdir(f"{HOME}/private"))
        with pytest.raises(PermissionDenied):
            run(campus, mallory.read_file(f"{HOME}/private/secret"))

    def test_per_file_mode_bits_revised(self, campus):
        """§5.1: the revised design adds per-file protection bits."""
        alice = campus.login(0, "alice", "alice-pw")
        bob = campus.login(1, "bob", "bob-pw")
        run(campus, alice.write_file(f"{HOME}/readable", b"open"))
        assert run(campus, bob.read_file(f"{HOME}/readable")) == b"open"
        # Clamp the mode bits on the server object (owner-only).
        volume = campus.volume("u-alice")
        volume.fs.set_mode("/readable", 0o600)
        campus.workstation(1).venus.cache.invalidate_all()
        with pytest.raises(PermissionDenied):
            run(campus, bob.read_file(f"{HOME}/readable"))
        # The owner still reads it.
        campus.workstation(0).venus.cache.invalidate_all()
        assert run(campus, alice.read_file(f"{HOME}/readable")) == b"open"


class TestWireSecurity:
    def test_file_contents_never_in_cleartext_on_lan(self, campus):
        secret = b"PAYROLL: confidential salary table"
        observed = []
        network = campus.network
        original = network.send

        def wiretap(datagram, kind="data", deliver=True):
            observed.append(datagram.payload)
            return original(datagram, kind, deliver)

        network.send = wiretap
        alice = campus.login(0, "alice", "alice-pw")
        run(campus, alice.write_file(f"{HOME}/payroll", secret))
        bob_readable = run(campus, alice.read_file(f"{HOME}/payroll"))
        assert bob_readable == secret
        for envelope in observed:
            assert secret not in getattr(envelope, "body", b"")
            assert secret not in getattr(envelope, "payload", b"")

    def test_passwords_never_on_lan(self, campus):
        observed = []
        network = campus.network
        original = network.send

        def wiretap(datagram, kind="data", deliver=True):
            envelope = datagram.payload
            observed.append(
                getattr(envelope, "body", b"") + getattr(envelope, "payload", b"")
            )
            return original(datagram, kind, deliver)

        network.send = wiretap
        session = campus.login(0, "alice", "alice-pw")
        run(campus, session.write_file(f"{HOME}/f", b"x"))
        for chunk in observed:
            assert b"alice-pw" not in chunk
