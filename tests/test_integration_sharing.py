"""Integration: sharing, mobility and cache consistency across workstations.

These exercise the paper's headline behaviours end to end through the real
protocol: whole-file caching, store-on-close visibility, callback breaks vs
check-on-open validation, and location-transparent user mobility.
"""

import pytest

from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"


class TestMobility:
    def test_user_moves_between_clusters(self):
        campus = small_campus(clusters=2, workstations_per_cluster=2)
        here = alice_session(campus, "ws0-0")
        run(campus, here.write_file(f"{HOME}/thesis.tex", b"\\chapter{Scale}"))
        # Walk across campus to a workstation in the other cluster.
        there = alice_session(campus, "ws1-1")
        assert run(campus, there.read_file(f"{HOME}/thesis.tex")) == b"\\chapter{Scale}"

    def test_first_remote_access_slower_than_second(self):
        """The paper's mobility cost: an initial penalty while the new
        workstation's cache fills, then local-speed access."""
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        home_session = alice_session(campus, "ws0-0")
        run(campus, home_session.write_file(f"{HOME}/f", b"d" * 100_000))
        away = alice_session(campus, "ws1-0")
        sim = campus.sim

        start = sim.now
        run(campus, away.read_file(f"{HOME}/f"))
        cold = sim.now - start

        start = sim.now
        run(campus, away.read_file(f"{HOME}/f"))
        warm = sim.now - start
        assert warm < cold / 2

    def test_same_namespace_everywhere(self):
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        a = alice_session(campus, "ws0-0")
        b = alice_session(campus, "ws1-0")
        run(campus, a.mkdir(f"{HOME}/shared-view"))
        listing_a = run(campus, a.listdir(HOME))
        listing_b = run(campus, b.listdir(HOME))
        assert listing_a == listing_b


class TestConsistency:
    @pytest.mark.parametrize("mode", ["prototype", "revised"])
    def test_store_on_close_visible_to_other_workstation(self, mode):
        campus = small_campus(mode=mode)
        writer = alice_session(campus, 0)
        reader = alice_session(campus, 1)
        run(campus, writer.write_file(f"{HOME}/f", b"v1"))
        assert run(campus, reader.read_file(f"{HOME}/f")) == b"v1"
        run(campus, writer.write_file(f"{HOME}/f", b"v2"))
        # "changes by one user are immediately visible to all other users"
        assert run(campus, reader.read_file(f"{HOME}/f")) == b"v2"

    def test_callback_break_invalidates_remote_cache(self):
        campus = small_campus(mode="revised")
        writer = alice_session(campus, 0)
        reader = alice_session(campus, 1)
        run(campus, writer.write_file(f"{HOME}/f", b"v1"))
        run(campus, reader.read_file(f"{HOME}/f"))  # reader now caches v1
        reader_venus = campus.workstation(1).venus
        assert reader_venus.callback_breaks_received == 0
        run(campus, writer.write_file(f"{HOME}/f", b"v2"))
        assert reader_venus.callback_breaks_received >= 1
        entry = reader_venus.cache.lookup("/usr/alice/f")
        assert entry is not None and not entry.callback_valid

    def test_callback_mode_rereads_are_free_of_server_calls(self):
        campus = small_campus(mode="revised")
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"data"))
        run(campus, session.read_file(f"{HOME}/f"))
        server = campus.server(0)
        before = server.node.calls_received.total
        for _ in range(5):
            run(campus, session.read_file(f"{HOME}/f"))
        assert server.node.calls_received.total == before  # pure cache hits

    def test_check_on_open_validates_every_open(self):
        campus = small_campus(mode="prototype")
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"data"))
        server = campus.server(0)
        before = server.call_mix.count("validate")
        for _ in range(5):
            run(campus, session.read_file(f"{HOME}/f"))
        assert server.call_mix.count("validate") == before + 5

    def test_last_close_wins_on_concurrent_stores(self):
        campus = small_campus()
        a = alice_session(campus, 0)
        b = alice_session(campus, 1)
        run(campus, a.write_file(f"{HOME}/f", b"base"))
        run(campus, b.read_file(f"{HOME}/f"))
        sim = campus.sim

        def writer(session, data, delay):
            yield sim.timeout(delay)
            fd = yield from session.open(f"{HOME}/f", "r+")
            yield from session.write(fd, data)
            yield sim.timeout(5.0)
            yield from session.close(fd)

        first = sim.process(writer(a, b"AAAA", 0.0))
        second = sim.process(writer(b, b"BBBB", 1.0))
        sim.run_until_complete(sim.all_of([first, second]))
        fresh = alice_session(campus, 0)
        final = run(campus, fresh.read_file(f"{HOME}/f"))
        assert final == b"BBBB"  # the later close overwrote the earlier

    def test_fetch_never_sees_partial_store(self):
        """Action consistency (§3.6): a fetch concurrent with a store gets
        the old version or the new one, never a mixture."""
        campus = small_campus()
        writer = alice_session(campus, 0)
        reader = alice_session(campus, 1)
        old = b"O" * 50_000
        new = b"N" * 50_000
        run(campus, writer.write_file(f"{HOME}/f", old))
        sim = campus.sim

        def storer():
            yield from writer.write_file(f"{HOME}/f", new)

        observed = []

        def fetcher():
            for _ in range(8):
                data = yield from reader.read_file(f"{HOME}/f")
                observed.append(bytes(data))
                yield sim.timeout(0.05)

        store_proc = sim.process(storer())
        fetch_proc = sim.process(fetcher())
        sim.run_until_complete(sim.all_of([store_proc, fetch_proc]))
        for data in observed:
            assert data in (old, new), "mixed old/new bytes observed"
        # Once the dust settles, everyone converges on the new version.
        assert run(campus, reader.read_file(f"{HOME}/f")) == new


class TestDirectorySharing:
    def test_new_files_appear_in_remote_listings(self):
        campus = small_campus(mode="revised")
        a = alice_session(campus, 0)
        b = alice_session(campus, 1)
        run(campus, b.listdir(HOME))  # b caches the (empty) directory
        run(campus, a.write_file(f"{HOME}/brand-new", b"x"))
        assert "brand-new" in run(campus, b.listdir(HOME))

    def test_remove_disappears_remotely(self):
        campus = small_campus(mode="revised")
        a = alice_session(campus, 0)
        b = alice_session(campus, 1)
        run(campus, a.write_file(f"{HOME}/doomed", b"x"))
        assert "doomed" in run(campus, b.listdir(HOME))
        run(campus, a.unlink(f"{HOME}/doomed"))
        assert "doomed" not in run(campus, b.listdir(HOME))

    def test_rename_updates_both_views(self):
        campus = small_campus(mode="revised")
        a = alice_session(campus, 0)
        b = alice_session(campus, 1)
        run(campus, a.write_file(f"{HOME}/before", b"x"))
        run(campus, b.read_file(f"{HOME}/before"))
        run(campus, a.rename(f"{HOME}/before", f"{HOME}/after"))
        assert run(campus, b.read_file(f"{HOME}/after")) == b"x"
        names = run(campus, b.listdir(HOME))
        assert "before" not in names and "after" in names


class TestLocking:
    def test_advisory_lock_cycle(self):
        campus = small_campus()
        a = alice_session(campus, 0)
        run(campus, a.write_file(f"{HOME}/db", b"records"))
        run(campus, a.set_lock(f"{HOME}/db", exclusive=True))
        b = alice_session(campus, 1)
        from repro.errors import LockConflict

        with pytest.raises(LockConflict):
            run(campus, b.set_lock(f"{HOME}/db", exclusive=True))
        run(campus, a.release_lock(f"{HOME}/db"))
        run(campus, b.set_lock(f"{HOME}/db", exclusive=True))
        run(campus, b.release_lock(f"{HOME}/db"))

    def test_locking_is_advisory(self):
        """Nothing stops a non-locking writer (§3.6)."""
        campus = small_campus()
        a = alice_session(campus, 0)
        b = alice_session(campus, 1)
        run(campus, a.write_file(f"{HOME}/f", b"v1"))
        run(campus, a.set_lock(f"{HOME}/f", exclusive=True))
        run(campus, b.write_file(f"{HOME}/f", b"v2"))  # ignores the lock
        assert run(campus, a.read_file(f"{HOME}/f")) == b"v2"
