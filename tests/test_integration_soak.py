"""Soak test: a multi-user day, then end-to-end consistency auditing.

After a synthetic day of concurrent activity, every workstation's cached
view must be reconcilable with the servers' authoritative state — the
whole point of the caching design.
"""

import pytest

from repro import ITCSystem, SystemConfig
from repro.workload import UserProfile, provision_campus, run_campus_day
from tests.helpers import run


def soak(mode, seed=3):
    campus = ITCSystem(
        SystemConfig(mode=mode, clusters=2, workstations_per_cluster=3,
                     functional_payload_crypto=False, seed=seed)
    )
    users = provision_campus(
        campus, hot_files=8, cold_files=8, shared_files=10, binary_files=6, seed=seed
    )
    fast = UserProfile(mean_think_seconds=4.0, p_edit=0.15, p_create=0.05)
    for user in users:
        user.profile = fast
    summary = run_campus_day(campus, users, duration=600.0, warmup=120.0)
    return campus, users, summary


@pytest.mark.parametrize("mode", ["prototype", "revised"])
def test_soak_day_runs_clean(mode):
    campus, users, summary = soak(mode)
    assert summary["failures"] == 0
    assert summary["actions"] > 100


@pytest.mark.parametrize("mode", ["prototype", "revised"])
def test_cached_data_reconciles_with_servers(mode):
    """Every fresh read at the end equals the server's authoritative copy."""
    campus, users, _summary = soak(mode)
    for user in users:
        session = user.session
        username = session.username
        for path in user.hot_files[:4]:
            vice_path = path[len("/vice"):]
            entry, rest = campus.servers[0].location.resolve(vice_path)
            server = campus.server(entry.custodian)
            authoritative = server.volumes[entry.volume_id].read(rest)
            observed = run(campus, session.read_file(path))
            assert observed == authoritative, f"{username} sees stale {path}"


def test_callback_state_is_bounded_by_cached_files():
    """Server callback state cannot exceed what workstations actually cache."""
    campus, users, _summary = soak("revised")
    total_promises = sum(server.callbacks.state_size for server in campus.servers)
    total_cached = sum(
        len(ws.venus.cache) + len(ws.venus.dir_cache) for ws in campus.workstations
    )
    assert total_promises <= total_cached * 2  # generous: promises ≤ holdings


def test_shared_files_converge_across_workstations():
    campus, users, _summary = soak("revised")
    shared = users[0].shared_files[0]
    views = {
        bytes(run(campus, user.session.read_file(shared))) for user in users[:4]
    }
    assert len(views) == 1  # everyone agrees after the dust settles


def test_locality_of_traffic():
    """Most traffic should stay inside clusters (the clustering principle)."""
    campus, users, _summary = soak("revised")
    backbone = campus.network.total_bytes_on("backbone")
    cluster_total = campus.network.total_bytes_on("cluster0") + campus.network.total_bytes_on(
        "cluster1"
    )
    assert backbone < cluster_total  # shared volumes pull some cross traffic
