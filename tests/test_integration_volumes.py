"""Integration: volumes — moves, read-only releases, quotas (§3.2, §5.3)."""

import pytest

from repro.errors import NotCustodian, QuotaExceeded
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"


class TestVolumeMove:
    def test_move_volume_between_servers(self):
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"before the move"))
        source = campus.server(0)
        target = campus.server(1)
        assert "u-alice" in source.volumes

        run(campus, source.move_volume("u-alice", "server1"))
        assert "u-alice" not in source.volumes
        assert "u-alice" in target.volumes
        # Every server's location replica learned the new custodian.
        for server in campus.servers:
            assert server.location.custodian_of("/usr/alice/f") == "server1"

    def test_data_survives_the_move(self):
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"payload"))
        run(campus, session.mkdir(f"{HOME}/d"))
        run(campus, session.write_file(f"{HOME}/d/g", b"nested"))
        run(campus, campus.server(0).move_volume("u-alice", "server1"))
        fresh = alice_session(campus, "ws1-0")
        assert run(campus, fresh.read_file(f"{HOME}/f")) == b"payload"
        assert run(campus, fresh.read_file(f"{HOME}/d/g")) == b"nested"

    def test_stale_hints_resolved_by_referral(self):
        """A workstation with a pre-move hint gets NotCustodian and recovers."""
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"v1"))
        # Venus at ws0-0 now has a hint pointing at server0.
        run(campus, campus.server(0).move_volume("u-alice", "server1"))
        # Invalidate the cached copy so the next read must contact Vice.
        campus.workstation(0).venus.cache.invalidate_all()
        assert run(campus, session.read_file(f"{HOME}/f")) == b"v1"

    def test_writes_work_after_move(self):
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"v1"))
        run(campus, campus.server(0).move_volume("u-alice", "server1"))
        run(campus, session.write_file(f"{HOME}/f", b"v2"))
        assert campus.server(1).volumes["u-alice"].read("/f") == b"v2"

    def test_fid_survives_move(self):
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"x"))
        fid_before = campus.server(0).volumes["u-alice"].fid_of("/f")
        run(campus, campus.server(0).move_volume("u-alice", "server1"))
        assert campus.server(1).volumes["u-alice"].fid_of("/f") == fid_before


class TestReadOnlyRelease:
    def _campus_with_binaries(self):
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        unix = campus.create_volume("/unix", custodian=0, volume_id="unix")
        campus.populate(
            unix,
            {f"/bin/tool{i}": b"ELF" + bytes([i]) * 500 for i in range(5)},
            owner="alice",  # alice plays release engineer in these tests
        )
        return campus

    def test_release_places_replicas(self):
        campus = self._campus_with_binaries()
        run(campus, campus.server(0).release_readonly("unix", ["server0", "server1"]))
        assert "unix-ro" in campus.server(0).volumes
        assert "unix-ro" in campus.server(1).volumes
        for server in campus.servers:
            entry = server.location.entry_for_volume("unix")
            assert entry.ro_servers == ["server0", "server1"]

    def test_reads_served_by_nearest_replica(self):
        campus = self._campus_with_binaries()
        run(campus, campus.server(0).release_readonly("unix", ["server0", "server1"]))
        remote = alice_session(campus, "ws1-0")  # cluster 1
        backbone_before = campus.cross_cluster_bytes()
        data = run(campus, remote.read_file("/vice/unix/bin/tool3"))
        assert data.startswith(b"ELF")
        # Served by server1 in the same cluster: no backbone crossing.
        assert campus.cross_cluster_bytes() == backbone_before

    def test_replica_is_frozen_against_later_writes(self):
        campus = self._campus_with_binaries()
        run(campus, campus.server(0).release_readonly("unix", ["server1"]))
        # A new release lands in the RW volume...
        admin = alice_session(campus, "ws0-0")
        acl = run(campus, admin.get_acl("/vice/unix/bin"))
        acl["positive"]["alice"] = "rwidlak"
        campus.server(0).volumes["unix"].acls[
            campus.server(0).volumes["unix"].resolve("/bin").number
        ].grant("alice", "rwidlak")
        run(campus, admin.write_file("/vice/unix/bin/tool0", b"NEW RELEASE"))
        # ...but the frozen replica still serves the old version.
        assert campus.server(1).volumes["unix-ro"].read("/bin/tool0").startswith(b"ELF")

    def test_cached_replica_copies_never_invalid(self):
        campus = self._campus_with_binaries()
        run(campus, campus.server(0).release_readonly("unix", ["server0", "server1"]))
        remote = alice_session(campus, "ws1-0")
        run(campus, remote.read_file("/vice/unix/bin/tool1"))
        validations_before = campus.workstation("ws1-0").venus.validations
        run(campus, remote.read_file("/vice/unix/bin/tool1"))
        assert campus.workstation("ws1-0").venus.validations == validations_before


class TestQuota:
    def test_quota_enforced_through_the_protocol(self):
        campus = small_campus()
        campus.add_user("bounded", "pw")
        campus.create_volume(
            "/usr/bounded", custodian=0, volume_id="u-bounded",
            owner="bounded", quota_bytes=1000,
        )
        session = campus.login(0, "bounded", "pw")
        run(campus, session.write_file("/vice/usr/bounded/ok", b"x" * 500))
        with pytest.raises(QuotaExceeded):
            run(campus, session.write_file("/vice/usr/bounded/big", b"y" * 900))

    def test_delete_frees_quota(self):
        campus = small_campus()
        campus.add_user("bounded", "pw")
        campus.create_volume(
            "/usr/bounded", custodian=0, volume_id="u-bounded",
            owner="bounded", quota_bytes=1000,
        )
        session = campus.login(0, "bounded", "pw")
        run(campus, session.write_file("/vice/usr/bounded/a", b"x" * 800))
        run(campus, session.unlink("/vice/usr/bounded/a"))
        run(campus, session.write_file("/vice/usr/bounded/b", b"y" * 800))


class TestCustodianReferral:
    def test_wrong_server_refers_to_custodian(self):
        """§3.1: a server asked about a file it does not store responds
        with the identity of the appropriate custodian."""
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        campus.add_user("bob", "bob-pw")
        campus.create_user_volume("bob", cluster=1)
        # Bob logs in at a cluster-0 workstation: his home server hint is
        # server0, but his files live on server1 — referral territory.
        session = campus.login("ws0-0", "bob", "bob-pw")
        run(campus, session.write_file("/vice/usr/bob/f", b"routed"))
        assert campus.server(1).volumes["u-bob"].read("/f") == b"routed"

    def test_exhausted_referrals_surface(self):
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"x"))
        # Corrupt every replica to point at a server that is not custodian:
        for server in campus.servers:
            server.location.reassign("u-alice", "server1")
        campus.workstation(0).venus.cache.invalidate_all()
        campus.workstation(0).venus.hints.forget("/usr/alice")
        with pytest.raises(NotCustodian):
            run(campus, session.read_file(f"{HOME}/f"))
