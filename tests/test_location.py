"""Unit tests for the replicated location database."""

import pytest

from repro.errors import FileNotFound, InvalidArgument
from repro.vice.location import LocationDatabase


@pytest.fixture
def db():
    database = LocationDatabase()
    database.add("/", "root", "server0")
    database.add("/usr/satya", "u-satya", "server1")
    database.add("/usr/satya/project", "proj", "server2")
    return database


class TestResolve:
    def test_longest_prefix_wins(self, db):
        entry, rest = db.resolve("/usr/satya/project/notes.txt")
        assert entry.volume_id == "proj"
        assert rest == "/notes.txt"

    def test_intermediate_prefix(self, db):
        entry, rest = db.resolve("/usr/satya/thesis.tex")
        assert entry.volume_id == "u-satya"
        assert rest == "/thesis.tex"

    def test_falls_back_to_root(self, db):
        entry, rest = db.resolve("/unix/bin/cc")
        assert entry.volume_id == "root"
        assert rest == "/unix/bin/cc"

    def test_exact_mount_path(self, db):
        entry, rest = db.resolve("/usr/satya")
        assert entry.volume_id == "u-satya"
        assert rest == "/"

    def test_no_entry_at_all(self):
        empty = LocationDatabase()
        with pytest.raises(FileNotFound):
            empty.resolve("/anything")

    def test_custodian_of(self, db):
        assert db.custodian_of("/usr/satya/f") == "server1"

    def test_subtree_basis_keeps_db_small(self, db):
        """Custodianship is per subtree: deep paths add no entries."""
        before = len(db)
        db.resolve("/usr/satya/a/b/c/d/e/f/g")
        assert len(db) == before


class TestMutation:
    def test_duplicate_mount_rejected(self, db):
        with pytest.raises(InvalidArgument):
            db.add("/usr/satya", "other", "server0")

    def test_duplicate_volume_rejected(self, db):
        with pytest.raises(InvalidArgument):
            db.add("/elsewhere", "u-satya", "server0")

    def test_remove(self, db):
        db.remove("/usr/satya/project")
        entry, _rest = db.resolve("/usr/satya/project/x")
        assert entry.volume_id == "u-satya"

    def test_remove_missing(self, db):
        with pytest.raises(FileNotFound):
            db.remove("/nothing")

    def test_reassign_moves_custodian(self, db):
        db.reassign("u-satya", "server9")
        assert db.custodian_of("/usr/satya/f") == "server9"

    def test_reassign_unknown_volume(self, db):
        with pytest.raises(FileNotFound):
            db.reassign("ghost", "server0")

    def test_set_ro_servers(self, db):
        db.set_ro_servers("u-satya", ["server3", "server4"])
        entry, _ = db.resolve("/usr/satya/f")
        assert entry.ro_servers == ["server3", "server4"]

    def test_version_increments(self, db):
        before = db.version
        db.reassign("u-satya", "server5")
        assert db.version == before + 1


class TestSnapshot:
    def test_roundtrip(self, db):
        db.set_ro_servers("proj", ["server0"])
        replica = LocationDatabase()
        replica.load_snapshot(db.snapshot())
        assert replica.version == db.version
        assert replica.custodian_of("/usr/satya/project/x") == "server2"
        entry, _ = replica.resolve("/usr/satya/project/x")
        assert entry.ro_servers == ["server0"]

    def test_load_replaces_existing(self, db):
        replica = LocationDatabase()
        replica.add("/stale", "stale", "nowhere")
        replica.load_snapshot(db.snapshot())
        with pytest.raises(FileNotFound):
            replica.entry_for_volume("stale")

    def test_entries_sorted(self, db):
        paths = [entry.mount_path for entry in db.entries()]
        assert paths == sorted(paths)


class TestResolveMemo:
    """resolve() is memoized; the memo must track every DB mutation."""

    def test_resolve_memoized_and_counted(self, db):
        first, rest = db.resolve("/usr/satya/thesis.tex")
        again, rest_again = db.resolve("/usr/satya/thesis.tex")
        assert (again, rest_again) == (first, rest)
        assert db.resolve_misses == 1
        assert db.resolve_hits == 1

    def test_add_deeper_mount_invalidates(self, db):
        entry, _ = db.resolve("/usr/satya/papers/sosp.tex")
        assert entry.volume_id == "u-satya"
        db.add("/usr/satya/papers", "papers", "server0")
        entry, rest = db.resolve("/usr/satya/papers/sosp.tex")
        assert entry.volume_id == "papers"
        assert rest == "/sosp.tex"

    def test_remove_invalidates(self, db):
        entry, _ = db.resolve("/usr/satya/project/notes.txt")
        assert entry.volume_id == "proj"
        db.remove("/usr/satya/project")
        entry, rest = db.resolve("/usr/satya/project/notes.txt")
        assert entry.volume_id == "u-satya"
        assert rest == "/project/notes.txt"

    def test_load_snapshot_invalidates(self, db):
        db.resolve("/usr/satya/thesis.tex")
        other = LocationDatabase()
        other.add("/", "root", "server9")
        db.load_snapshot(other.snapshot())
        entry, _ = db.resolve("/usr/satya/thesis.tex")
        assert entry.volume_id == "root"
        assert entry.custodian == "server9"

    def test_reassign_shows_through_memo(self, db):
        entry, _ = db.resolve("/usr/satya/thesis.tex")
        assert entry.custodian == "server1"
        db.reassign("u-satya", "server7")
        entry, _ = db.resolve("/usr/satya/thesis.tex")
        assert entry.custodian == "server7"
