"""Unit tests for the advisory lock table and the callback registry."""

import pytest

from repro.errors import LockConflict
from repro.rpc.connection import Connection
from repro.vice.callbacks import CallbackRegistry
from repro.vice.locks import LockTable


class TestLockTable:
    def test_multiple_readers_allowed(self):
        locks = LockTable()
        locks.acquire("fid1", "a@ws0", exclusive=False)
        locks.acquire("fid1", "b@ws1", exclusive=False)
        assert locks.holders("fid1") == {"a@ws0": "read", "b@ws1": "read"}

    def test_writer_excludes_readers(self):
        locks = LockTable()
        locks.acquire("fid1", "writer@ws0", exclusive=True)
        with pytest.raises(LockConflict):
            locks.acquire("fid1", "reader@ws1", exclusive=False)

    def test_readers_exclude_writer(self):
        locks = LockTable()
        locks.acquire("fid1", "reader@ws1", exclusive=False)
        with pytest.raises(LockConflict):
            locks.acquire("fid1", "writer@ws0", exclusive=True)

    def test_two_writers_conflict(self):
        locks = LockTable()
        locks.acquire("fid1", "a@ws0", exclusive=True)
        with pytest.raises(LockConflict):
            locks.acquire("fid1", "b@ws1", exclusive=True)

    def test_reader_upgrades_to_writer_alone(self):
        locks = LockTable()
        locks.acquire("fid1", "a@ws0", exclusive=False)
        locks.acquire("fid1", "a@ws0", exclusive=True)
        assert locks.holders("fid1") == {"a@ws0": "write"}

    def test_release_allows_next(self):
        locks = LockTable()
        locks.acquire("fid1", "a@ws0", exclusive=True)
        locks.release("fid1", "a@ws0")
        locks.acquire("fid1", "b@ws1", exclusive=True)

    def test_release_is_idempotent(self):
        locks = LockTable()
        locks.release("fid1", "a@ws0")
        locks.acquire("fid1", "a@ws0", exclusive=False)
        locks.release("fid1", "a@ws0")
        locks.release("fid1", "a@ws0")

    def test_release_all_on_crash(self):
        locks = LockTable()
        locks.acquire("f1", "a@ws0", exclusive=True)
        locks.acquire("f2", "a@ws0", exclusive=False)
        locks.acquire("f2", "b@ws1", exclusive=False)
        locks.release_all("a@ws0")
        assert locks.holders("f1") == {}
        assert locks.holders("f2") == {"b@ws1": "read"}

    def test_conflicts_counted(self):
        locks = LockTable()
        locks.acquire("f", "a", exclusive=True)
        for _ in range(3):
            with pytest.raises(LockConflict):
                locks.acquire("f", "b", exclusive=True)
        assert locks.conflicts == 3

    def test_table_shrinks_when_empty(self):
        locks = LockTable()
        locks.acquire("f", "a", exclusive=False)
        locks.release("f", "a")
        assert len(locks) == 0

    def test_independent_keys(self):
        locks = LockTable()
        locks.acquire("f1", "a", exclusive=True)
        locks.acquire("f2", "b", exclusive=True)  # no conflict


def make_conn(cid):
    return Connection(cid, f"ws-{cid}", "server0", "user", "none")


class TestCallbackRegistry:
    def test_register_and_holders(self):
        registry = CallbackRegistry()
        conn = make_conn("c1")
        registry.register("fid1", conn)
        assert registry.holders("fid1") == [conn]

    def test_exclude_the_mutator(self):
        registry = CallbackRegistry()
        writer = make_conn("w")
        reader = make_conn("r")
        registry.register("fid1", writer)
        registry.register("fid1", reader)
        assert registry.holders("fid1", exclude=writer) == [reader]

    def test_register_idempotent_per_connection(self):
        registry = CallbackRegistry()
        conn = make_conn("c1")
        registry.register("fid1", conn)
        registry.register("fid1", conn)
        assert registry.state_size == 1
        assert registry.promises_made == 1

    def test_clear_counts_broken(self):
        registry = CallbackRegistry()
        registry.register("fid1", make_conn("a"))
        registry.register("fid1", make_conn("b"))
        registry.clear("fid1")
        assert registry.promises_broken == 2
        assert registry.holders("fid1") == []

    def test_forget_holder(self):
        registry = CallbackRegistry()
        a, b = make_conn("a"), make_conn("b")
        registry.register("fid1", a)
        registry.register("fid1", b)
        registry.forget_holder("fid1", a)
        assert registry.holders("fid1") == [b]

    def test_drop_connection_scrubs_everywhere(self):
        registry = CallbackRegistry()
        conn = make_conn("gone")
        other = make_conn("stays")
        registry.register("f1", conn)
        registry.register("f2", conn)
        registry.register("f2", other)
        registry.drop_connection(conn)
        assert registry.holders("f1") == []
        assert registry.holders("f2") == [other]
        assert registry.state_size == 1

    def test_state_size_measures_server_memory(self):
        registry = CallbackRegistry()
        for index in range(5):
            registry.register(f"fid{index}", make_conn(f"c{index}"))
        assert registry.state_size == 5
