"""Unit tests for the binary marshalling format."""

import pytest

from repro.rpc import marshal
from repro.rpc.marshal import MarshalError


ROUNDTRIP_CASES = [
    None,
    True,
    False,
    0,
    -1,
    2**40,
    -(2**40),
    0.0,
    3.14159,
    -1e300,
    "",
    "hello",
    "uniçode ☃",
    b"",
    b"\x00\xff binary",
    [],
    [1, 2, 3],
    [None, True, "mix", b"ed"],
    {},
    {"key": "value"},
    {"nested": {"list": [1, [2, [3]]], "flag": False}},
    {"status": {"fid": "vol1.5", "size": 1024, "version": 2, "mtime": 1.5}},
]


@pytest.mark.parametrize("value", ROUNDTRIP_CASES, ids=repr)
def test_roundtrip(value):
    assert marshal.loads(marshal.dumps(value)) == value


def test_tuple_decodes_as_list():
    assert marshal.loads(marshal.dumps((1, 2))) == [1, 2]


def test_wire_size_matches_dumps():
    value = {"a": [1, 2, 3], "b": "text"}
    assert marshal.wire_size(value) == len(marshal.dumps(value))


def test_unsupported_type_rejected():
    with pytest.raises(MarshalError):
        marshal.dumps({"bad": object()})


def test_non_string_dict_key_rejected():
    with pytest.raises(MarshalError):
        marshal.dumps({1: "x"})


def test_trailing_bytes_rejected():
    data = marshal.dumps(42) + b"junk"
    with pytest.raises(MarshalError):
        marshal.loads(data)


def test_truncated_buffer_rejected():
    data = marshal.dumps("a longer string value")
    with pytest.raises(MarshalError):
        marshal.loads(data[:-3])


def test_empty_buffer_rejected():
    with pytest.raises(MarshalError):
        marshal.loads(b"")


def test_unknown_tag_rejected():
    with pytest.raises(MarshalError):
        marshal.loads(b"Z")


def test_int_boundaries():
    for value in (2**62, -(2**62)):
        assert marshal.loads(marshal.dumps(value)) == value


def test_large_bytes_payload():
    payload = bytes(range(256)) * 1000
    assert marshal.loads(marshal.dumps(payload)) == payload
