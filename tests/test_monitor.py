"""Tests for the §3.6 monitoring tools and rebalancing recommendations."""

import pytest

from repro.analysis import CampusMonitor
from tests.helpers import run, small_campus


def remote_heavy_campus(accesses=25):
    """A user whose volume lives in cluster 0 but who works in cluster 1."""
    campus = small_campus(clusters=2, workstations_per_cluster=1)
    campus.add_user("mover", "pw")
    campus.create_user_volume("mover", cluster=0)
    session = campus.login("ws1-0", "mover", "pw")
    for index in range(accesses):
        run(campus, session.write_file(f"/vice/usr/mover/f{index}", b"x" * 300))
    return campus, session


class TestTrafficObservation:
    def test_traffic_matrix_attributes_by_segment(self):
        campus, _session = remote_heavy_campus(accesses=5)
        monitor = CampusMonitor(campus)
        matrix = monitor.traffic_matrix()
        assert "u-mover" in matrix
        assert matrix["u-mover"].get("cluster1", 0) >= 5
        assert matrix["u-mover"].get("cluster0", 0) == 0

    def test_local_traffic_attributed_locally(self):
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        session = campus.login("ws0-0", "alice", "alice-pw")
        run(campus, session.write_file("/vice/usr/alice/f", b"y"))
        matrix = CampusMonitor(campus).traffic_matrix()
        assert matrix["u-alice"].get("cluster0", 0) >= 1

    def test_usage_by_user_accumulates_bytes(self):
        campus, _session = remote_heavy_campus(accesses=4)
        usage = CampusMonitor(campus).usage_by_user()
        assert usage["mover"] >= 4 * 300

    def test_server_load_view(self):
        campus, _session = remote_heavy_campus(accesses=3)
        load = CampusMonitor(campus).server_load()
        assert load["server0"] > 0
        assert set(load) == {"server0", "server1"}

    def test_reset_clears_window(self):
        campus, session = remote_heavy_campus(accesses=5)
        monitor = CampusMonitor(campus)
        monitor.reset()
        assert monitor.traffic_matrix() == {}


class TestRecommendations:
    def test_remote_heavy_volume_flagged(self):
        campus, _session = remote_heavy_campus(accesses=25)
        monitor = CampusMonitor(campus)
        recommendations = monitor.recommendations(min_accesses=20)
        assert len(recommendations) == 1
        rec = recommendations[0]
        assert rec.volume_id == "u-mover"
        assert rec.current_server == "server0"
        assert rec.suggested_server == "server1"
        assert rec.remote_fraction > 0.9

    def test_quiet_volumes_not_flagged(self):
        campus, _session = remote_heavy_campus(accesses=5)
        assert CampusMonitor(campus).recommendations(min_accesses=20) == []

    def test_locally_used_volumes_not_flagged(self):
        campus = small_campus(clusters=2, workstations_per_cluster=1)
        session = campus.login("ws0-0", "alice", "alice-pw")
        for index in range(30):
            run(campus, session.write_file(f"/vice/usr/alice/f{index}", b"z"))
        assert CampusMonitor(campus).recommendations(min_accesses=20) == []

    def test_applying_recommendation_moves_the_volume(self):
        campus, session = remote_heavy_campus(accesses=25)
        monitor = CampusMonitor(campus)
        rec = monitor.recommendations(min_accesses=20)[0]
        run(campus, monitor.apply(rec))
        assert "u-mover" in campus.server(1).volumes
        assert "u-mover" not in campus.server(0).volumes
        # The user keeps working, now locally.
        assert run(campus, session.read_file("/vice/usr/mover/f0")) == b"x" * 300

    def test_after_move_no_further_recommendation(self):
        campus, session = remote_heavy_campus(accesses=25)
        monitor = CampusMonitor(campus)
        rec = monitor.recommendations(min_accesses=20)[0]
        run(campus, monitor.apply(rec))
        monitor.reset()
        for index in range(25):
            run(campus, session.read_file(f"/vice/usr/mover/f{index}"))
        # Reads now hit server1 from cluster1: nothing to recommend.
        assert monitor.recommendations(min_accesses=20) == []

    def test_cross_cluster_traffic_falls_after_move(self):
        campus, session = remote_heavy_campus(accesses=25)
        campus.workstation("ws1-0").venus.invalidate_all()
        before = campus.cross_cluster_bytes()
        run(campus, session.read_file("/vice/usr/mover/f0"))
        cold_remote = campus.cross_cluster_bytes() - before

        monitor = CampusMonitor(campus)
        rec = monitor.recommendations(min_accesses=20)[0]
        run(campus, monitor.apply(rec))
        campus.workstation("ws1-0").venus.invalidate_all()
        before = campus.cross_cluster_bytes()
        run(campus, session.read_file("/vice/usr/mover/f1"))
        cold_local = campus.cross_cluster_bytes() - before
        assert cold_local < cold_remote


class TestDashboard:
    def test_campus_report_renders_everything(self):
        from repro.analysis import campus_report

        campus, session = remote_heavy_campus(accesses=3)
        report = campus_report(campus)
        assert "Vice servers" in report
        assert "Virtue workstations" in report
        assert "Location database" in report
        assert "Campus call mix" in report
        assert "server0" in report and "server1" in report
        assert "ws1-0" in report
        assert "/usr/mover" in report

    def test_report_marks_offline_volumes(self):
        from repro.analysis import campus_report

        campus, _session = remote_heavy_campus(accesses=1)
        campus.volume("u-mover").take_offline()
        assert "OFFLINE" in campus_report(campus)

    def test_report_before_any_traffic(self):
        from repro.analysis import campus_report
        from tests.helpers import small_campus

        campus = small_campus()
        report = campus_report(campus)
        assert "Campus call mix" not in report  # nothing counted yet
        assert "u-alice" in report
