"""Unit tests for the local/shared name space partition (Fig. 3-1/3-2)."""

import pytest

from repro.errors import FileNotFound, TooManySymlinks
from repro.storage.unixfs import UnixFileSystem
from repro.virtue.namespace import Namespace, VICE_MOUNT


@pytest.fixture
def ns():
    fs = UnixFileSystem()
    fs.makedirs("/vice")
    fs.makedirs("/tmp")
    fs.makedirs("/etc")
    fs.create("/etc/passwd", b"root:0")
    return Namespace(fs)


class TestClassify:
    def test_vice_path(self, ns):
        assert ns.classify("/vice/usr/satya/f") == ("vice", "/usr/satya/f")

    def test_vice_mount_itself(self, ns):
        assert ns.classify("/vice") == ("vice", "/")

    def test_local_path(self, ns):
        assert ns.classify("/etc/passwd") == ("local", "/etc/passwd")

    def test_local_missing_leaf_still_classifies(self, ns):
        # Needed so `open(..., "w")` can create files.
        assert ns.classify("/tmp/newfile") == ("local", "/tmp/newfile")

    def test_missing_intermediate_rejected(self, ns):
        with pytest.raises(FileNotFound):
            ns.classify("/no/such/dir/file")

    def test_normalization(self, ns):
        assert ns.classify("/vice//usr/../unix/bin") == ("vice", "/unix/bin")


class TestSymlinkCrossing:
    def test_link_into_vice(self, ns):
        """Fig. 3-2: /bin -> /vice/unix/sun/bin."""
        ns.local_fs.symlink("/bin", "/vice/unix/sun/bin")
        assert ns.classify("/bin/cc") == ("vice", "/unix/sun/bin/cc")

    def test_link_to_local(self, ns):
        ns.local_fs.symlink("/passwd-alias", "/etc/passwd")
        assert ns.classify("/passwd-alias") == ("local", "/etc/passwd")

    def test_relative_link(self, ns):
        ns.local_fs.symlink("/etc/alias", "passwd")
        assert ns.classify("/etc/alias") == ("local", "/etc/passwd")

    def test_chained_links(self, ns):
        ns.local_fs.symlink("/a", "/b")
        ns.local_fs.symlink("/b", "/vice/target")
        assert ns.classify("/a/rest") == ("vice", "/target/rest")

    def test_loop_detected(self, ns):
        ns.local_fs.symlink("/x", "/y")
        ns.local_fs.symlink("/y", "/x")
        with pytest.raises(TooManySymlinks):
            ns.classify("/x/deep")

    def test_heterogeneity_per_workstation_type(self):
        """Sun and Vax workstations map /bin to different Vice subtrees."""
        for ws_type in ("sun", "vax"):
            fs = UnixFileSystem()
            fs.makedirs("/vice")
            fs.symlink("/bin", f"/vice/unix/{ws_type}/bin")
            ns = Namespace(fs)
            assert ns.classify("/bin/cc") == ("vice", f"/unix/{ws_type}/bin/cc")


class TestConversions:
    def test_to_vice_and_back(self, ns):
        assert ns.to_vice("/vice/usr/x") == "/usr/x"
        assert ns.to_workstation("/usr/x") == "/vice/usr/x"
        assert ns.to_workstation("/") == VICE_MOUNT

    def test_is_shared(self, ns):
        assert ns.is_shared("/vice/a")
        assert ns.is_shared("/vice")
        assert not ns.is_shared("/vicex")
        assert not ns.is_shared("/etc")
