"""Unit tests for the campus network substrate."""

import pytest

from repro.errors import SimulationError
from repro.net import Datagram, Network, WireFormat
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def two_cluster_net(sim):
    """backbone joining cluster0 and cluster1, one node on each."""
    net = Network(sim)
    net.add_segment("backbone")
    net.add_segment("cluster0")
    net.add_segment("cluster1")
    net.add_bridge("br0", "cluster0", "backbone")
    net.add_bridge("br1", "cluster1", "backbone")
    net.attach("a", "cluster0")
    net.attach("b", "cluster0")
    net.attach("c", "cluster1")
    return net


class TestWireFormat:
    def test_frames_for(self):
        wire = WireFormat(mtu=1000, header_bytes=50)
        assert wire.frames_for(0) == 1
        assert wire.frames_for(1) == 1
        assert wire.frames_for(1000) == 1
        assert wire.frames_for(1001) == 2
        assert wire.frames_for(10_000) == 10

    def test_wire_bytes_includes_headers(self):
        wire = WireFormat(mtu=1000, header_bytes=50)
        assert wire.wire_bytes(2000) == 2000 + 2 * 50

    def test_wire_bits_includes_gaps(self):
        wire = WireFormat(mtu=1000, header_bytes=50, interframe_gap_bits=100)
        assert wire.wire_bits(1000) == (1000 + 50) * 8 + 100


class TestRouting:
    def test_same_segment_single_hop(self, sim):
        net = two_cluster_net(sim)
        assert net.hop_count("a", "b") == 1

    def test_cross_cluster_three_hops(self, sim):
        net = two_cluster_net(sim)
        route = net.route("a", "c")
        assert [segment.name for segment in route] == ["cluster0", "backbone", "cluster1"]

    def test_route_cached(self, sim):
        net = two_cluster_net(sim)
        assert net.route("a", "c") is net.route("a", "c")

    def test_duplicate_node_rejected(self, sim):
        net = two_cluster_net(sim)
        with pytest.raises(SimulationError):
            net.attach("a", "cluster1")

    def test_duplicate_segment_rejected(self, sim):
        net = two_cluster_net(sim)
        with pytest.raises(SimulationError):
            net.add_segment("backbone")

    def test_partition_breaks_route(self, sim):
        net = two_cluster_net(sim)
        net.partition("cluster1")
        with pytest.raises(SimulationError):
            net.route("a", "c")
        assert net.hop_count("a", "b") == 1  # intra-cluster unaffected

    def test_heal_restores_route(self, sim):
        net = two_cluster_net(sim)
        net.partition("cluster1")
        net.heal("cluster1")
        assert net.hop_count("a", "c") == 3


class TestTransfer:
    def test_delivery_to_inbox(self, sim):
        net = two_cluster_net(sim)

        def sender():
            yield from net.send(Datagram("a", "b", "hello", 100))

        def receiver():
            datagram = yield net.interfaces["b"].receive()
            return datagram.payload, datagram.hops

        sim.process(sender())
        payload, hops = sim.run_until_complete(sim.process(receiver()))
        assert payload == "hello"
        assert hops == 1

    def test_cross_cluster_delivery_slower_than_local(self, sim):
        net = two_cluster_net(sim)
        times = {}

        def send_to(dst):
            start = sim.now
            yield from net.send(Datagram("a", dst, None, 10_000))
            times[dst] = sim.now - start

        sim.run_until_complete(sim.process(send_to("b")))
        sim.run_until_complete(sim.process(send_to("c")))
        assert times["c"] > times["b"]

    def test_lost_datagram_not_delivered_but_carried(self, sim):
        net = two_cluster_net(sim)
        before = net.total_bytes_on("cluster0")

        def sender():
            yield from net.send(Datagram("a", "b", None, 5000), deliver=False)

        sim.run_until_complete(sim.process(sender()))
        assert len(net.interfaces["b"].inbox) == 0
        assert net.total_bytes_on("cluster0") > before

    def test_transmission_time_scales_with_size(self, sim):
        net = two_cluster_net(sim)
        seg = net.segments["cluster0"]
        assert seg.transmission_time(100_000) > 10 * seg.transmission_time(1_000)

    def test_concurrent_transfers_share_medium(self, sim):
        net = two_cluster_net(sim)
        alone = net.segments["cluster0"].transmission_time(1_000_000)
        finished = []

        def sender(tag):
            yield from net.send(Datagram("a", "b", tag, 1_000_000))
            finished.append((tag, sim.now))

        sim.process(sender("x"))
        sim.process(sender("y"))
        sim.run()
        # Bursts interleave, so contention slows *both* transfers: even the
        # first to finish takes much longer than an uncontended transfer.
        assert min(t for _tag, t in finished) > alone * 1.5

    def test_bridge_counts_forwarded(self, sim):
        net = two_cluster_net(sim)

        def sender():
            yield from net.send(Datagram("a", "c", None, 100))

        sim.run_until_complete(sim.process(sender()))
        assert sum(bridge.transfers_forwarded for bridge in net.bridges) == 2

    def test_traffic_accounting_by_kind(self, sim):
        net = two_cluster_net(sim)

        def sender():
            yield from net.send(Datagram("a", "b", None, 100), kind="rpc")

        sim.run_until_complete(sim.process(sender()))
        assert net.segments["cluster0"].traffic.count("rpc") > 0


class TestRouteCacheInvalidation:
    """The memoized routes must never outlive a topology change."""

    def test_route_cache_counts_hits_and_misses(self, sim):
        net = two_cluster_net(sim)
        net.route("a", "c")
        net.route("a", "c")
        assert net.route_misses == 1
        assert net.route_hits == 1
        counts = sim.metrics.value("net.route_cache")["counts"]
        assert counts == {"hits": 1, "misses": 1}

    def test_partition_drops_cached_route(self, sim):
        net = two_cluster_net(sim)
        assert net.hop_count("a", "c") == 3  # primes the cache
        net.partition("cluster1")
        with pytest.raises(SimulationError):
            net.route("a", "c")
        assert net.hop_count("a", "b") == 1  # intra-cluster unaffected

    def test_heal_drops_cached_failure_and_restores_route(self, sim):
        net = two_cluster_net(sim)
        net.partition("cluster1")
        with pytest.raises(SimulationError):
            net.route("a", "c")
        net.heal("cluster1")
        route = net.route("a", "c")
        assert [segment.name for segment in route] == ["cluster0", "backbone", "cluster1"]

    def test_add_bridge_drops_cached_route(self, sim):
        net = Network(sim)
        for segment in ("s0", "s1", "s2"):
            net.add_segment(segment)
        net.add_bridge("br01", "s0", "s1")
        net.add_bridge("br12", "s1", "s2")
        net.attach("x", "s0")
        net.attach("y", "s2")
        assert net.hop_count("x", "y") == 3  # via s1, now cached
        net.add_bridge("br02", "s0", "s2")   # a shortcut appears
        assert net.hop_count("x", "y") == 2

    def test_delivery_after_heal_uses_full_path(self, sim):
        net = two_cluster_net(sim)
        net.partition("cluster1")
        net.heal("cluster1")

        def sender():
            yield from net.send(Datagram("a", "c", "payload", 100))

        def receiver():
            datagram = yield net.interfaces["c"].receive()
            return datagram.hops

        sim.process(sender())
        hops = sim.run_until_complete(sim.process(receiver()))
        assert hops == 3
        assert sum(bridge.transfers_forwarded for bridge in net.bridges) == 2
