"""Tests for live operations (repro.obs.live): controller, rolling
aggregator and the structured ops-event stream."""

import json

import pytest

from tests.helpers import alice_session, run, small_campus

from repro.errors import SimulationError
from repro.faults.plan import Fault, FaultPlan
from repro.obs.live import OpsEventStream, RollingAggregator, SimulationController
from repro.sim.kernel import Simulator
from repro.sim.metrics import Samples
from repro.workload import launch_campus_day, provision_campus


# ======================================================================
# SimulationController: run control from outside the kernel
# ======================================================================


def ticker(sim, log, every=1.0):
    while True:
        yield sim.timeout(every)
        log.append(sim.now)


def test_controller_advance_parks_at_horizon():
    sim = Simulator()
    log = []
    sim.process(ticker(sim, log))
    controller = SimulationController(sim)
    assert controller.advance(5.0) == 5.0
    assert sim.now == 5.0
    assert log == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_controller_pause_blocks_advance():
    sim = Simulator()
    log = []
    sim.process(ticker(sim, log))
    controller = SimulationController(sim)
    controller.pause()
    assert controller.state == "paused"
    assert controller.advance(5.0) == 0.0
    assert log == []
    controller.resume()
    controller.advance(2.0)
    assert log == [1.0, 2.0]


def test_controller_toggle():
    controller = SimulationController(Simulator())
    assert controller.toggle() is True
    assert controller.paused
    assert controller.toggle() is False


def test_step_event_works_while_paused():
    sim = Simulator()
    log = []
    sim.process(ticker(sim, log))
    controller = SimulationController(sim)
    controller.pause()
    assert controller.step_event(3) == 3
    assert controller.events_stepped == 3


def test_step_event_stops_on_empty_queue():
    sim = Simulator()

    def once():
        yield sim.timeout(1.0)

    sim.process(once())
    controller = SimulationController(sim)
    ran = controller.step_event(100)
    assert ran < 100  # queue drained before the count


def test_step_time_advances_exactly_even_paused():
    sim = Simulator()
    log = []
    sim.process(ticker(sim, log))
    controller = SimulationController(sim)
    controller.pause()
    assert controller.step_time(2.5) == 2.5
    assert log == [1.0, 2.0]
    with pytest.raises(SimulationError):
        controller.step_time(-1.0)


def test_breakpoint_pauses_exactly_there():
    sim = Simulator()
    log = []
    sim.process(ticker(sim, log))
    controller = SimulationController(sim)
    controller.add_breakpoint(3.0)
    controller.add_breakpoint(7.0)
    assert controller.advance(10.0) == 3.0
    assert controller.paused
    assert controller.last_breakpoint == 3.0
    assert controller.breakpoints == (7.0,)
    controller.resume()
    assert controller.advance(10.0) == 7.0
    controller.resume()
    assert controller.advance(10.0) == 10.0


def test_breakpoint_must_be_in_future():
    sim = Simulator()
    controller = SimulationController(sim)
    with pytest.raises(SimulationError):
        controller.add_breakpoint(0.0)
    controller.add_breakpoint(5.0)
    controller.clear_breakpoints()
    assert controller.breakpoints == ()


def test_tick_respects_pacing_budget():
    sim = Simulator()
    log = []
    sim.process(ticker(sim, log))
    controller = SimulationController(sim, pacing=10.0)
    advanced = controller.tick(0.5)  # 10 virtual s per wall s * 0.5 s
    assert advanced == 5.0
    assert sim.now == 5.0


def test_tick_without_pacing_needs_horizon():
    controller = SimulationController(Simulator())
    with pytest.raises(SimulationError):
        controller.tick(1.0)
    assert controller.tick(1.0, horizon=2.0) == 2.0


def test_tick_while_paused_is_noop():
    controller = SimulationController(Simulator(), pacing=10.0)
    controller.pause()
    assert controller.tick(1.0) == 0.0


def test_controller_replays_byte_identically():
    """A campus driven in controller slices equals one driven directly."""
    def summary(drive):
        campus = small_campus(clusters=2, workstations_per_cluster=2)
        users = provision_campus(campus, hot_files=4, cold_files=4,
                                 shared_files=4, binary_files=4)
        launch_campus_day(campus, users, 300.0)
        drive(campus)
        return (campus.sim.now, campus.sim._sequence,
                [user.actions for user in users],
                campus.mean_hit_ratio())

    def direct(campus):
        campus.sim.run(until=300.0)

    def controlled(campus):
        controller = SimulationController(campus.sim)
        controller.add_breakpoint(137.0)
        while campus.sim.now < 300.0:
            controller.resume()
            controller.advance(min(campus.sim.now + 50.0, 300.0))

    assert summary(direct) == summary(controlled)


# ======================================================================
# RollingAggregator: windows, deltas, top-K
# ======================================================================


def sampled_campus():
    campus = small_campus(clusters=1, workstations_per_cluster=2)
    aggregator = RollingAggregator(campus.metrics)
    session = alice_session(campus)
    return campus, aggregator, session


def test_window_counters_are_deltas():
    campus, aggregator, session = sampled_campus()
    aggregator.sample(campus.sim.now)
    run(campus, session.write_file("/vice/usr/alice/f", b"x" * 100))
    run(campus, session.read_file("/vice/usr/alice/f"))
    window = aggregator.sample(campus.sim.now)
    assert window["counters"]["opens"] >= 2
    assert window["counters"]["stores"] >= 1
    opens_so_far = window["counters"]["opens"]
    # No traffic between samples -> zero deltas.
    window2 = aggregator.sample(campus.sim.now + 10.0)
    assert window2["counters"]["opens"] == 0
    assert window2["dt"] == 10.0
    # More traffic counts only the new operations.
    run(campus, session.read_file("/vice/usr/alice/f"))
    window3 = aggregator.sample(campus.sim.now + 1.0)
    assert 0 < window3["counters"]["opens"] <= opens_so_far


def test_window_rates_and_events():
    campus, aggregator, session = sampled_campus()
    aggregator.sample(campus.sim.now)
    run(campus, session.write_file("/vice/usr/alice/f", b"data"))
    window = aggregator.sample(campus.sim.now + 4.0)
    assert window["rates"]["stores"] == pytest.approx(
        window["counters"]["stores"] / window["dt"])
    assert window["events"] > 0
    assert window["events_per_s"] > 0


def test_windowed_hit_ratio():
    campus, aggregator, session = sampled_campus()
    run(campus, session.write_file("/vice/usr/alice/f", b"data"))
    run(campus, session.read_file("/vice/usr/alice/f"))
    aggregator.sample(campus.sim.now)
    # All re-reads from here on hit the cache: windowed ratio is 1.0 even
    # though the boot-to-date ratio includes the initial misses.
    for _ in range(5):
        run(campus, session.read_file("/vice/usr/alice/f"))
    window = aggregator.sample(campus.sim.now)
    assert window["hit_ratio"] == 1.0


def test_windowed_latency_percentiles():
    campus, aggregator, session = sampled_campus()
    run(campus, session.write_file("/vice/usr/alice/f", b"data"))
    window = aggregator.sample(campus.sim.now)
    assert window["latency"]["count"] > 0
    assert window["latency"]["p99"] >= window["latency"]["p50"] > 0
    # A quiet window has no fresh samples.
    window2 = aggregator.sample(campus.sim.now + 1.0)
    assert window2["latency"]["count"] == 0


def test_counter_reset_clamps_to_zero():
    campus, aggregator, session = sampled_campus()
    run(campus, session.write_file("/vice/usr/alice/f", b"data"))
    aggregator.sample(campus.sim.now)
    campus.reset_counters()
    window = aggregator.sample(campus.sim.now + 1.0)
    assert all(value >= 0 for value in window["counters"].values())


def test_dead_provider_is_skipped():
    campus, aggregator, session = sampled_campus()

    def broken():
        raise RuntimeError("component crashed")

    campus.metrics.counter("venus.zombie.opens", broken)
    window = aggregator.sample(campus.sim.now)  # must not raise
    assert "counters" in window


def test_top_k_volumes_and_users():
    campus, aggregator, session = sampled_campus()
    run(campus, session.write_file("/vice/usr/alice/f", b"y" * 500))
    for _ in range(3):
        run(campus, session.read_file("/vice/usr/alice/f"))
    aggregator.sample(campus.sim.now)
    top_users = aggregator.top("users", 3)
    assert top_users and top_users[0][0] == "alice"
    top_volumes = aggregator.top("volumes", 3)
    assert any("alice" in name or "usr" in name for name, _ in top_volumes)


def test_series_and_peak():
    campus, aggregator, session = sampled_campus()
    aggregator.sample(campus.sim.now)
    run(campus, session.write_file("/vice/usr/alice/f", b"data"))
    aggregator.sample(campus.sim.now + 1.0)
    series = aggregator.series("stores")
    assert len(series) == 2
    assert aggregator.peak("stores") == max(series)
    assert len(aggregator.series("hit_ratio", n=1)) == 1


def test_windows_ring_buffer_is_bounded():
    campus = small_campus()
    aggregator = RollingAggregator(campus.metrics, maxlen=4)
    for i in range(10):
        aggregator.sample(float(i))
    assert len(aggregator.windows) == 4
    assert aggregator.samples_taken == 10
    assert aggregator.last["t"] == 9.0


def test_overhead_is_tracked():
    campus = small_campus()
    aggregator = RollingAggregator(campus.metrics)
    window = aggregator.sample(0.0)
    assert window["overhead_us"] > 0
    assert len(aggregator.overhead_us) == 1


def test_install_sampler_samples_periodically():
    campus = small_campus()
    aggregator = RollingAggregator(campus.metrics)
    aggregator.install_sampler(campus.sim, 10.0)
    campus.sim.run(until=35.0)
    assert len(aggregator.windows) == 3
    assert [window["t"] for window in aggregator.windows] == [10.0, 20.0, 30.0]
    with pytest.raises(SimulationError):
        aggregator.install_sampler(campus.sim, 10.0)
    with pytest.raises(SimulationError):
        RollingAggregator(campus.metrics).install_sampler(campus.sim, 0.0)


def test_classification_refreshes_on_new_instruments():
    campus = small_campus()
    aggregator = RollingAggregator(campus.metrics)
    aggregator.sample(0.0)
    state = {"n": 0}
    campus.metrics.counter("venus.late.opens", lambda: state["n"])
    state["n"] = 5
    window = aggregator.sample(1.0)
    assert window["counters"]["opens"] >= 5


# ======================================================================
# OpsEventStream: structured events, JSONL, derived storms
# ======================================================================


def test_emit_and_tail():
    sim = Simulator()
    stream = OpsEventStream(sim)
    sim.run(until=5.0)
    record = stream.emit("fault", kind="server_crash", target="server0")
    assert record["t"] == 5.0
    assert stream.tail(1) == [record]
    assert stream.emitted == 1


def test_jsonl_file_stream(tmp_path):
    sim = Simulator()
    path = tmp_path / "events.jsonl"
    stream = OpsEventStream(sim, path=str(path))
    stream.emit("fault", target="server0")
    stream.emit("recovery", target="server0")
    stream.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert [line["event"] for line in lines] == ["fault", "recovery"]
    assert all("t" in line for line in lines)


def test_buffer_is_bounded():
    stream = OpsEventStream(Simulator(), maxlen=3)
    for i in range(10):
        stream.emit("soak", index=i)
    assert len(stream.events) == 3
    assert stream.emitted == 10


def test_attach_availability_forwards_fault_events():
    campus = small_campus(clusters=1, workstations_per_cluster=1)
    campus.install_faults(FaultPlan(
        name="one-crash", faults=(
            Fault("server_crash", "server0", start=5.0, duration=10.0),
        ),
    ))
    stream = OpsEventStream(campus.sim)
    stream.attach_availability(campus.availability)
    campus.sim.run(until=60.0)
    kinds = [record["event"] for record in stream.events]
    assert "fault" in kinds
    assert "recovery" in kinds
    assert "salvage" in kinds
    fault = next(r for r in stream.events if r["event"] == "fault")
    assert fault["target"] == "server0"
    assert fault["kind"] == "server_crash"


def test_attach_availability_forwards_outages():
    campus = small_campus(clusters=1, workstations_per_cluster=1)
    campus.ensure_fault_controls()
    stream = OpsEventStream(campus.sim)
    stream.attach_availability(campus.availability)
    tracker = campus.availability
    tracker.record_op("alice", False, now=10.0)
    tracker.record_op("alice", False, now=11.0)
    tracker.record_op("alice", True, now=14.0)
    events = [record["event"] for record in stream.events]
    assert events == ["outage_begin", "outage_end"]
    end = stream.events[-1]
    assert end["duration"] == 4.0
    assert end["failures"] == 2


def test_scan_detects_break_storm_and_cache_pressure():
    stream = OpsEventStream(Simulator(), break_storm_rate=1.0,
                            eviction_rate=1.0)
    quiet = {"t": 10.0, "rates": {"callback_breaks": 0.5, "evictions": 0.5}}
    assert stream.scan(quiet) == []
    stormy = {"t": 20.0, "rates": {"callback_breaks": 5.0, "evictions": 3.0}}
    derived = stream.scan(stormy)
    assert [record["event"] for record in derived] == [
        "callback_break_storm", "cache_pressure"]
    assert derived[0]["t"] == 20.0
