"""Tests for the unified metrics registry (repro.obs.registry)."""

import json

import pytest

from tests.helpers import alice_session, run, small_campus

from repro.obs import MetricsRegistry
from repro.sim.kernel import Simulator
from repro.sim.metrics import Counter, Samples, UtilizationTracker


# ======================================================================
# instrument kinds
# ======================================================================


def test_counter_from_counter_object():
    registry = MetricsRegistry()
    counter = Counter("calls")
    registry.counter("rpc.s.calls", counter)
    counter.add("Fetch")
    counter.add("Fetch")
    counter.add("Store")
    reading = registry.value("rpc.s.calls")
    assert reading == {
        "type": "counter", "total": 3, "counts": {"Fetch": 2, "Store": 1},
    }


def test_counter_from_int_closure():
    registry = MetricsRegistry()
    state = {"n": 0}
    registry.counter("venus.ws.opens", lambda: state["n"])
    state["n"] = 7
    assert registry.value("venus.ws.opens") == {"type": "counter", "total": 7}


def test_gauge_reads_live_value():
    registry = MetricsRegistry()
    box = {"v": 1.5}
    registry.gauge("venus.ws.hit_ratio", lambda: box["v"])
    assert registry.value("venus.ws.hit_ratio")["value"] == 1.5
    box["v"] = 0.25
    assert registry.value("venus.ws.hit_ratio")["value"] == 0.25


def test_histogram_get_or_create_returns_same_bag():
    registry = MetricsRegistry()
    bag = registry.histogram("rpc.ws.latency.Fetch")
    assert registry.histogram("rpc.ws.latency.Fetch") is bag
    bag.add(0.010)
    bag.add(0.030)
    reading = registry.value("rpc.ws.latency.Fetch")
    assert reading["type"] == "histogram"
    assert reading["count"] == 2
    assert reading["min"] == 0.010
    assert reading["max"] == 0.030
    assert reading["p50"] <= reading["p90"] <= reading["p99"]


def test_utilization_instrument():
    sim = Simulator()
    registry = MetricsRegistry()
    tracker = UtilizationTracker(sim, capacity=1)
    registry.utilization("host.h.cpu", lambda: tracker)
    reading = registry.value("host.h.cpu")
    assert reading["type"] == "utilization"
    assert set(reading) == {"type", "mean", "peak"}


def test_unknown_kind_rejected():
    registry = MetricsRegistry()
    registry._register("bad", "thermometer", lambda: 0)
    with pytest.raises(ValueError):
        registry.value("bad")


# ======================================================================
# namespace operations
# ======================================================================


def test_names_prefix_filter_and_contains():
    registry = MetricsRegistry()
    registry.gauge("venus.ws0.opens", lambda: 1)
    registry.gauge("venus.ws1.opens", lambda: 2)
    registry.gauge("vice.s0.volumes", lambda: 3)
    assert registry.names("venus.") == ["venus.ws0.opens", "venus.ws1.opens"]
    assert "vice.s0.volumes" in registry
    assert "vice.s0.files" not in registry
    assert len(registry) == 3


def test_reregistration_replaces():
    registry = MetricsRegistry()
    registry.gauge("x", lambda: 1)
    registry.gauge("x", lambda: 2)
    assert len(registry) == 1
    assert registry.value("x")["value"] == 2


def test_unregister_by_prefix():
    registry = MetricsRegistry()
    registry.gauge("venus.ws0.a", lambda: 1)
    registry.gauge("venus.ws0.b", lambda: 1)
    registry.gauge("vice.s0.c", lambda: 1)
    assert registry.unregister("venus.ws0.") == 2
    assert registry.names() == ["vice.s0.c"]


def test_missing_instrument_raises():
    registry = MetricsRegistry()
    with pytest.raises(KeyError):
        registry.value("nope")
    assert registry.get("nope") is None


# ======================================================================
# snapshots: the campus-wide read surface
# ======================================================================


def test_snapshot_round_trips_through_json():
    campus = small_campus()
    session = alice_session(campus)
    run(campus, session.write_file("/vice/usr/alice/f", b"d" * 2000))
    run(campus, session.read_file("/vice/usr/alice/f"))
    snapshot = campus.metrics.snapshot()
    decoded = json.loads(json.dumps(snapshot, sort_keys=True))
    assert decoded == snapshot
    # Every component layer registered itself.
    prefixes = {name.split(".", 1)[0] for name in snapshot}
    assert {"venus", "vice", "rpc", "host"} <= prefixes


def test_snapshot_matches_raw_attributes():
    campus = small_campus()
    session = alice_session(campus)
    run(campus, session.write_file("/vice/usr/alice/g", b"d" * 500))
    run(campus, session.read_file("/vice/usr/alice/g"))
    venus = campus.workstation(0).venus
    name = campus.workstation(0).name
    snap = campus.metrics.snapshot(f"venus.{name}.")
    assert snap[f"venus.{name}.opens"]["total"] == venus.opens
    assert snap[f"venus.{name}.cache.hits"]["total"] == venus.cache.hits
    assert snap[f"venus.{name}.cache.used_bytes"]["value"] == venus.cache.used_bytes
    server = campus.servers[0]
    sname = server.host.name
    reading = campus.metrics.value(f"vice.{sname}.call_mix")
    assert reading["counts"] == server.call_mix.as_dict()
    assert (campus.metrics.value(f"rpc.{sname}.calls_received")["total"]
            == server.node.calls_received.total)


def test_latency_histograms_populate_per_procedure():
    campus = small_campus(workstations_per_cluster=2)
    writer = alice_session(campus, ws=0)
    reader = alice_session(campus, ws=1)
    run(campus, writer.write_file("/vice/usr/alice/h", b"d" * 4000))
    run(campus, reader.read_file("/vice/usr/alice/h"))
    bags = campus.metrics.histograms("rpc.")
    procs = {name.rsplit(".", 1)[1] for name in bags}
    assert "FetchByFid" in procs
    assert "CreateByFid" in procs
    for bag in bags.values():
        assert isinstance(bag, Samples)
        assert len(bag) >= 1
        assert bag.mean > 0


# ======================================================================
# snapshot hardening: a raising provider cannot poison the snapshot
# ======================================================================


def test_snapshot_survives_raising_provider():
    registry = MetricsRegistry()
    registry.gauge("good.value", lambda: 42)
    state = {}
    registry.counter("dead.closure", lambda: state["gone"])  # KeyError
    registry.gauge("torn.down", lambda: (_ for _ in ()).throw(
        AttributeError("host torn down")))

    snapshot = registry.snapshot()
    assert snapshot["good.value"] == {"type": "gauge", "value": 42}
    assert snapshot["dead.closure"] == {"type": "counter", "unavailable": True}
    assert snapshot["torn.down"] == {"type": "gauge", "unavailable": True}
    # The marker round-trips through JSON like any healthy reading.
    assert json.loads(json.dumps(snapshot)) == snapshot


def test_value_still_raises_for_direct_reads():
    # snapshot() degrades gracefully; a *direct* read of one instrument
    # keeps the loud failure so unit tests and debuggers see the cause.
    registry = MetricsRegistry()
    state = {}
    registry.counter("dead.closure", lambda: state["gone"])
    with pytest.raises(KeyError):
        registry.value("dead.closure")
    assert registry.get("dead.closure").read_safe() == {
        "type": "counter", "unavailable": True,
    }


def test_provider_recovers_after_repair():
    registry = MetricsRegistry()
    state = {}
    registry.counter("flappy", lambda: state["n"])
    assert registry.snapshot()["flappy"]["unavailable"] is True
    state["n"] = 3
    assert registry.snapshot()["flappy"] == {"type": "counter", "total": 3}


# ======================================================================
# providers are closures: they survive counter resets
# ======================================================================


def test_instruments_survive_reset_counters():
    campus = small_campus()
    session = alice_session(campus)
    run(campus, session.write_file("/vice/usr/alice/r", b"d" * 100))
    run(campus, session.read_file("/vice/usr/alice/r"))
    name = campus.workstation(0).name
    sname = campus.servers[0].host.name
    assert campus.metrics.value(f"venus.{name}.fetches")["total"] >= 0
    assert campus.metrics.value(f"rpc.{sname}.calls_received")["total"] > 0

    # reset_counters REPLACES the Counter objects and zeroes the raw ints;
    # the registry must read the fresh state, not a stale captured object.
    campus.reset_counters()
    assert campus.metrics.value(f"rpc.{sname}.calls_received")["total"] == 0
    assert campus.metrics.value(f"venus.{name}.cache.hits")["total"] == 0
    assert campus.metrics.value(f"vice.{sname}.call_mix")["total"] == 0

    run(campus, session.read_file("/vice/usr/alice/r"))
    assert campus.metrics.value(f"rpc.{sname}.calls_received")["total"] >= 0
    assert campus.metrics.value(f"venus.{name}.opens")["total"] > 0
