"""Tests for the causal tracing layer (repro.obs.trace)."""

import json

from tests.helpers import alice_session, run, small_campus

from repro.obs import (
    NULL_RECORDER,
    TraceRecorder,
    chrome_trace,
    validate_coverage,
)
from repro.sim.kernel import Simulator


# ======================================================================
# span mechanics on a bare simulator
# ======================================================================


def test_nested_spans_record_parentage():
    sim = Simulator()
    recorder = TraceRecorder(sim)
    with recorder.span("outer", component="test") as outer:
        with recorder.span("inner", component="test") as inner:
            assert inner.span.parent_id == outer.span.span_id
            assert inner.span.trace_id == outer.span.trace_id
    assert [s.name for s in recorder.spans] == ["inner", "outer"]
    assert recorder.spans[1].parent_id is None


def test_sibling_roots_get_distinct_traces():
    sim = Simulator()
    recorder = TraceRecorder(sim)
    with recorder.span("first"):
        pass
    with recorder.span("second"):
        pass
    first, second = recorder.spans
    assert first.trace_id != second.trace_id


def test_span_records_virtual_time():
    sim = Simulator()
    recorder = TraceRecorder(sim)

    def job():
        with recorder.span("work"):
            yield sim.timeout(2.5)

    sim.run_until_complete(sim.process(job()))
    (span,) = recorder.spans
    assert span.start == 0.0
    assert span.duration == 2.5


def test_interleaved_processes_keep_separate_stacks():
    """Two processes alternating at yields must not adopt each other's spans."""
    sim = Simulator()
    recorder = TraceRecorder(sim)

    def worker(name, delay):
        with recorder.span(name):
            yield sim.timeout(delay)
            with recorder.span(name + ".child"):
                yield sim.timeout(delay)

    sim.process(worker("a", 1.0))
    sim.process(worker("b", 1.5))
    sim.run()
    by_name = {s.name: s for s in recorder.spans}
    assert by_name["a.child"].parent_id == by_name["a"].span_id
    assert by_name["b.child"].parent_id == by_name["b"].span_id
    assert by_name["a"].trace_id != by_name["b"].trace_id


def test_explicit_parent_and_tuple_context():
    sim = Simulator()
    recorder = TraceRecorder(sim)
    with recorder.span("root") as root:
        ctx = recorder.context()
    assert ctx == (root.span.trace_id, root.span.span_id)
    # A propagated (trace_id, span_id) hop, as carried on an Envelope.
    with recorder.span("remote", parent=ctx) as remote:
        assert remote.span.trace_id == root.span.trace_id
        assert remote.span.parent_id == root.span.span_id


def test_span_error_capture():
    sim = Simulator()
    recorder = TraceRecorder(sim)
    try:
        with recorder.span("doomed"):
            raise ValueError("boom")
    except ValueError:
        pass
    (span,) = recorder.spans
    assert span.error == "ValueError: boom"


# ======================================================================
# the null recorder: zero cost when off
# ======================================================================


def test_null_recorder_is_the_default():
    sim = Simulator()
    assert sim.tracer is NULL_RECORDER
    assert not sim.tracer.enabled
    assert sim.tracer.spans == ()


def test_null_recorder_allocates_nothing():
    ctx1 = NULL_RECORDER.span("anything", component="x", host="y", attr=1)
    ctx2 = NULL_RECORDER.span("other")
    assert ctx1 is ctx2  # the one preallocated no-op context
    with ctx1 as span:
        span.add(ignored=True)
        span.rename("still ignored")
    assert NULL_RECORDER.current() is None
    assert NULL_RECORDER.context() is None


# ======================================================================
# end to end across the campus
# ======================================================================


def _traced_workload(campus):
    """Write at one workstation, read at another: one store, one cold fetch."""
    recorder = TraceRecorder(campus.sim)
    writer = alice_session(campus, ws=0)
    reader = alice_session(campus, ws=1)
    run(campus, writer.write_file("/vice/usr/alice/f", b"x" * 9000))
    run(campus, reader.read_file("/vice/usr/alice/f"))
    return recorder


def test_rpc_hop_propagates_trace_context():
    campus = small_campus()
    recorder = _traced_workload(campus)
    by_id = {s.span_id: s for s in recorder.spans}
    serves = [s for s in recorder.spans if s.name.startswith("rpc.serve:")]
    assert serves, "no server-side spans recorded"
    for serve in serves:
        parent = by_id[serve.parent_id]
        assert parent.name == "rpc.call:" + serve.name.split(":", 1)[1]
        assert parent.trace_id == serve.trace_id
        assert parent.host != serve.host  # the hop crossed machines


def test_trace_covers_fetch_and_store_chains():
    campus = small_campus()
    recorder = _traced_workload(campus)
    assert validate_coverage(recorder.spans) == []


def test_validate_coverage_reports_gaps():
    assert validate_coverage([]) == ["trace contains no spans"]
    campus = small_campus()
    recorder = TraceRecorder(campus.sim)
    session = alice_session(campus)
    run(campus, session.write_file("/vice/usr/alice/g", b"y" * 100))
    only_stores = [s for s in recorder.spans if "venus.open" not in s.name]
    problems = validate_coverage(only_stores)
    assert any("Fetch chain" in p for p in problems)


def test_callback_break_is_parented_to_the_mutation():
    campus = small_campus(workstations_per_cluster=2)
    recorder = TraceRecorder(campus.sim)
    reader = alice_session(campus, ws=0)
    writer = alice_session(campus, ws=1)
    run(campus, writer.write_file("/vice/usr/alice/shared", b"v1"))
    run(campus, reader.read_file("/vice/usr/alice/shared"))  # takes a callback
    run(campus, writer.write_file("/vice/usr/alice/shared", b"v2"))  # breaks it
    breaks = [s for s in recorder.spans if s.name == "vice.callback_break"]
    assert breaks, "no callback-break spans recorded"
    by_id = {s.span_id: s for s in recorder.spans}
    for brk in breaks:
        assert brk.parent_id is not None
        assert by_id[brk.parent_id].name == "vice.store"


# ======================================================================
# virtual time must not move
# ======================================================================


def _workload_clock(traced):
    campus = small_campus()
    recorder = TraceRecorder(campus.sim) if traced else None
    session = alice_session(campus)
    run(campus, session.write_file("/vice/usr/alice/t", b"z" * 5000))
    run(campus, session.read_file("/vice/usr/alice/t"))
    run(campus, session.listdir("/vice/usr/alice"))
    return campus.sim.now, recorder


def test_tracing_does_not_perturb_virtual_time():
    untraced_now, _ = _workload_clock(traced=False)
    traced_now, recorder = _workload_clock(traced=True)
    assert recorder.spans  # the traced run really did record
    assert traced_now == untraced_now  # byte-identical clocks


# ======================================================================
# export formats
# ======================================================================


def test_jsonl_export_round_trips(tmp_path):
    campus = small_campus()
    recorder = _traced_workload(campus)
    path = tmp_path / "spans.jsonl"
    recorder.write_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == len(recorder.spans)
    records = [json.loads(line) for line in lines]
    assert {r["name"] for r in records} == {s.name for s in recorder.spans}
    for record in records:
        assert record["duration"] >= 0.0


def test_chrome_trace_is_wellformed(tmp_path):
    campus = small_campus()
    recorder = _traced_workload(campus)
    path = tmp_path / "trace.json"
    recorder.write_chrome_trace(str(path))
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    assert isinstance(events, list) and events
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(complete) == len(recorder.spans)
    for event in complete:
        assert {"name", "ts", "dur", "pid", "tid", "cat", "args"} <= set(event)
        assert event["ts"] >= 0 and event["dur"] >= 0
    named = {e["args"]["name"] for e in metadata if e["name"] == "process_name"}
    assert {"venus", "rpc", "vice", "storage"} <= named


def test_chrome_trace_groups_by_component_and_host():
    campus = small_campus()
    recorder = _traced_workload(campus)
    data = chrome_trace(recorder.spans)
    pids = {}
    for event in data["traceEvents"]:
        if event["ph"] == "M" and event["name"] == "process_name":
            pids[event["pid"]] = event["args"]["name"]
    for event in data["traceEvents"]:
        if event["ph"] == "X":
            assert pids[event["pid"]] == event["cat"]


def test_recorder_attach_spans_multiple_simulations():
    sim_a, sim_b = Simulator(), Simulator()
    recorder = TraceRecorder(sim_a)
    with recorder.span("on-a"):
        pass
    recorder.attach(sim_b)
    assert sim_b.tracer is recorder
    with recorder.span("on-b"):
        pass
    ids = [s.span_id for s in recorder.spans]
    assert len(set(ids)) == len(ids)  # ids keep counting, no collisions
