"""Unit tests for path manipulation."""

import pytest

from repro.errors import InvalidArgument
from repro.storage import pathutil


class TestNormalize:
    def test_plain(self):
        assert pathutil.normalize("/a/b/c") == "/a/b/c"

    def test_root(self):
        assert pathutil.normalize("/") == "/"

    def test_trailing_slash(self):
        assert pathutil.normalize("/a/b/") == "/a/b"

    def test_double_slashes(self):
        assert pathutil.normalize("//a///b") == "/a/b"

    def test_dot_components(self):
        assert pathutil.normalize("/a/./b/.") == "/a/b"

    def test_dotdot(self):
        assert pathutil.normalize("/a/b/../c") == "/a/c"

    def test_dotdot_past_root(self):
        assert pathutil.normalize("/../../a") == "/a"

    def test_relative_rejected(self):
        with pytest.raises(InvalidArgument):
            pathutil.normalize("a/b")

    def test_empty_rejected(self):
        with pytest.raises(InvalidArgument):
            pathutil.normalize("")


class TestComponents:
    def test_basic(self):
        assert pathutil.components("/a/b/c") == ["a", "b", "c"]

    def test_root_empty(self):
        assert pathutil.components("/") == []

    def test_preserves_dotdot(self):
        assert pathutil.components("/a/../b") == ["a", "..", "b"]

    def test_relative(self):
        assert pathutil.components("x/y") == ["x", "y"]


class TestJoin:
    def test_simple(self):
        assert pathutil.join("/a", "b") == "/a/b"

    def test_absolute_restart(self):
        assert pathutil.join("/a", "/b") == "/b"

    def test_trailing_slash_base(self):
        assert pathutil.join("/", "x") == "/x"

    def test_multiple(self):
        assert pathutil.join("/a", "b", "c") == "/a/b/c"

    def test_empty_args_rejected(self):
        with pytest.raises(InvalidArgument):
            pathutil.join()


class TestSplit:
    def test_basic(self):
        assert pathutil.split("/a/b/c") == ("/a/b", "c")

    def test_single_component(self):
        assert pathutil.split("/a") == ("/", "a")

    def test_root(self):
        assert pathutil.split("/") == ("/", "")

    def test_dirname_basename(self):
        assert pathutil.dirname("/x/y/z") == "/x/y"
        assert pathutil.basename("/x/y/z") == "z"
        assert pathutil.dirname("/x") == "/"


class TestIsAbs:
    def test_absolute(self):
        assert pathutil.is_abs("/a")

    def test_relative(self):
        assert not pathutil.is_abs("a/b")
