"""Property-based tests: whole-file cache invariants under random traffic."""

from hypothesis import given, settings, strategies as st

from repro.errors import NoSpace
from repro.sim import Simulator
from repro.venus.cache import CacheEntry, WholeFileCache

paths = st.sampled_from([f"/f{i}" for i in range(12)])
sizes = st.integers(min_value=1, max_value=400)
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "lookup", "remove", "invalidate"]), paths, sizes),
    max_size=60,
)


def fresh_entry(path, size):
    return CacheEntry(path, f"v.{path.strip('/f')}", b"d" * size, 1, {})


@given(operations)
@settings(max_examples=150)
def test_count_policy_never_exceeds_limit_with_evictables(ops):
    sim = Simulator()
    cache = WholeFileCache(sim, policy="count", max_files=4)
    for op, path, size in ops:
        sim.now += 1.0  # advance LRU time artificially
        if op == "insert":
            cache.insert(fresh_entry(path, size))
        elif op == "lookup":
            cache.lookup(path)
        elif op == "remove":
            cache.remove(path)
        elif op == "invalidate":
            entry = cache.lookup(path)
            if entry:
                entry.callback_valid = False
        assert len(cache) <= 4


@given(operations)
@settings(max_examples=150)
def test_space_policy_never_exceeds_bytes(ops):
    sim = Simulator()
    cache = WholeFileCache(sim, policy="space", max_bytes=1000)
    for op, path, size in ops:
        sim.now += 1.0
        if op == "insert":
            try:
                cache.insert(fresh_entry(path, size))
            except NoSpace:
                pass
        elif op == "remove":
            cache.remove(path)
        assert cache.used_bytes <= 1000


@given(operations)
def test_fid_index_always_consistent(ops):
    sim = Simulator()
    cache = WholeFileCache(sim, policy="count", max_files=5)
    for op, path, size in ops:
        sim.now += 1.0
        if op == "insert":
            cache.insert(fresh_entry(path, size))
        elif op == "remove":
            cache.remove(path)
    # Every entry is findable through its fid and vice versa.
    for entry in cache:
        assert cache.lookup_fid(entry.fid) is entry
    assert len(cache._by_fid) == len(cache._entries)


@given(operations)
def test_used_bytes_matches_sum_of_entries(ops):
    sim = Simulator()
    cache = WholeFileCache(sim, policy="space", max_bytes=2000)
    for op, path, size in ops:
        sim.now += 1.0
        if op == "insert":
            try:
                cache.insert(fresh_entry(path, size))
            except NoSpace:
                pass
        elif op == "remove":
            cache.remove(path)
    assert cache.used_bytes == sum(entry.size for entry in cache)
