"""Property-based tests: the cipher's contract under arbitrary inputs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import SessionCipher, keystream, seal, unseal
from repro.errors import IntegrityError

keys = st.binary(min_size=16, max_size=48)
nonces = st.binary(min_size=8, max_size=8)
plaintexts = st.binary(max_size=2048)


@given(keys, nonces, plaintexts)
@settings(max_examples=200)
def test_seal_unseal_roundtrip(key, nonce, plaintext):
    assert unseal(key, seal(key, nonce, plaintext)) == plaintext


@given(keys, keys, nonces, plaintexts)
def test_wrong_key_always_detected(key, other, nonce, plaintext):
    if key == other:
        return
    sealed = seal(key, nonce, plaintext)
    with pytest.raises(IntegrityError):
        unseal(other, sealed)


@given(keys, nonces, plaintexts, st.integers(min_value=0, max_value=10_000), st.integers(1, 255))
def test_single_byte_tamper_always_detected(key, nonce, plaintext, position, flip):
    sealed = bytearray(seal(key, nonce, plaintext))
    index = position % len(sealed)
    sealed[index] ^= flip
    with pytest.raises(IntegrityError):
        unseal(key, bytes(sealed))


@given(keys, nonces, plaintexts)
def test_ciphertext_hides_plaintext(key, nonce, plaintext):
    if len(plaintext) < 16:
        return  # tiny strings can collide with nonce/tag bytes by chance
    sealed = seal(key, nonce, plaintext)
    body = sealed[8:]  # skip the cleartext nonce, which the caller chose
    assert plaintext not in body


@given(keys, nonces, st.integers(min_value=0, max_value=512))
def test_keystream_length_and_determinism(key, nonce, length):
    stream = keystream(key, nonce, length)
    assert len(stream) == length
    assert stream == keystream(key, nonce, length)


@given(keys, plaintexts, plaintexts)
def test_session_cipher_directions_never_collide(key, first, second):
    """Two messages (even identical) from one cipher differ on the wire,
    and each direction decrypts the other's traffic correctly."""
    key = (key * 3)[:32]
    a_to_b = SessionCipher(key, direction=0)
    b_side = SessionCipher(key, direction=1)
    wire_one = a_to_b.encrypt(first)
    wire_two = a_to_b.encrypt(first)
    assert wire_one != wire_two
    assert b_side.decrypt(wire_one) == first
    assert b_side.decrypt(wire_two) == first
    back = b_side.encrypt(second)
    assert a_to_b.decrypt(back) == second
