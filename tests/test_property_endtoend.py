"""Property-based end-to-end test: the whole stack against a dict oracle.

Hypothesis drives random whole-file operations through a real campus
(workstation → Venus → RPC → Vice) *and* through a trivially correct model;
after every step the two worlds must agree.  Two workstations take turns so
the cache-consistency machinery is constantly in play.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import ReproError
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"
NAMES = [f"file{i}" for i in range(5)]


class CampusMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.campus = small_campus(clusters=1, workstations_per_cluster=2)
        self.sessions = [alice_session(self.campus, 0), alice_session(self.campus, 1)]
        self.model = {}  # name -> bytes

    # -- operations (ws chooses which workstation acts) -----------------------

    @rule(ws=st.integers(0, 1), name=st.sampled_from(NAMES), data=st.binary(max_size=200))
    def write(self, ws, name, data):
        run(self.campus, self.sessions[ws].write_file(f"{HOME}/{name}", data))
        self.model[name] = data

    @rule(ws=st.integers(0, 1), name=st.sampled_from(NAMES))
    def read(self, ws, name):
        try:
            observed = run(self.campus, self.sessions[ws].read_file(f"{HOME}/{name}"))
            assert name in self.model, f"read of deleted/missing {name} succeeded"
            assert observed == self.model[name]
        except ReproError:
            assert name not in self.model

    @rule(ws=st.integers(0, 1), name=st.sampled_from(NAMES))
    def delete(self, ws, name):
        try:
            run(self.campus, self.sessions[ws].unlink(f"{HOME}/{name}"))
            assert name in self.model
            del self.model[name]
        except ReproError:
            assert name not in self.model

    @rule(ws=st.integers(0, 1), src=st.sampled_from(NAMES), dst=st.sampled_from(NAMES))
    def rename(self, ws, src, dst):
        if src == dst:
            return
        try:
            run(self.campus, self.sessions[ws].rename(f"{HOME}/{src}", f"{HOME}/{dst}"))
            assert src in self.model
            self.model[dst] = self.model.pop(src)
        except ReproError:
            assert src not in self.model

    @rule(ws=st.integers(0, 1), name=st.sampled_from(NAMES), extra=st.binary(min_size=1, max_size=50))
    def append(self, ws, name, extra):
        try:
            run(self.campus, self.sessions[ws].append_file(f"{HOME}/{name}", extra))
        except ReproError:
            # append creates when missing in our open("a") semantics
            raise
        self.model[name] = self.model.get(name, b"") + extra

    @rule()
    def let_time_pass(self):
        self.campus.run(until=self.campus.sim.now + 30.0)

    # -- invariants -----------------------------------------------------------

    @invariant()
    def listings_match_everywhere(self):
        expected = sorted(self.model)
        for session in self.sessions:
            names = run(self.campus, session.listdir(HOME))
            assert sorted(names) == expected

    @invariant()
    def server_state_matches_model(self):
        volume = self.campus.volume("u-alice")
        server_files = {
            path.lstrip("/"): node.data
            for path, node in volume.fs.walk("/")
            if node.file_type == "file"
        }
        assert server_files == self.model


TestCampusMachine = CampusMachine.TestCase
TestCampusMachine.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
