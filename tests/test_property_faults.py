"""Property: under packet corruption, no corrupted payload is ever accepted.

A corrupting link flips one byte of a sealed CALL or REPLY in flight.  The
receiver's integrity check (the MAC under functional crypto, the marshal
layer under ``EncryptionMode.NONE``) must catch every flip: a lossy,
corrupting backbone can slow the campus down with retransmissions but can
never change the bytes a user reads back or a server stores — in either
protocol generation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.faults import Fault, FaultPlan
from repro.rpc.costs import RpcCosts
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"

# Patient retries: corruption should cost time, not correctness.
PATIENT = RpcCosts(retransmit_timeout=0.5, max_retries=8)


def _corrupting_campus(mode, seed, corrupt=0.25):
    plan = FaultPlan(name="corruptor", seed=seed, faults=(
        Fault("link", "backbone", start=0.0, duration=1e9, corrupt=corrupt),
    ))
    return small_campus(mode=mode, clusters=2, workstations_per_cluster=1,
                        rpc_costs=PATIENT, fault_plan=plan)


def _rejections(campus):
    return (
        sum(ws.venus.node.corrupt_rejected for ws in campus.workstations)
        + sum(server.node.corrupt_rejected for server in campus.servers)
    )


@pytest.mark.parametrize("mode", ["prototype", "revised"])
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 2**16),
       blobs=st.lists(st.binary(min_size=1, max_size=300),
                      min_size=3, max_size=6))
def test_corrupted_payloads_never_accepted(mode, seed, blobs):
    campus = _corrupting_campus(mode, seed)
    # Alice works from the other cluster: every Vice op crosses the
    # corrupting backbone in both directions.
    session = alice_session(campus, "ws1-0")
    stored = {}
    for index, blob in enumerate(blobs):
        path = f"{HOME}/f{index}"
        try:
            run(campus, session.write_file(path, blob))
            stored[path] = blob
        except ReproError:
            pass  # a write may exhaust its retries; it must not half-land
    assert stored, "every write exhausted its retries"

    for path, blob in stored.items():
        # Bypass the cache so the read-back crosses the wire again.
        campus.workstation("ws1-0").venus.cache.invalidate_all()
        assert run(campus, session.read_file(path)) == blob
        # The server's copy is byte-exact too: no corrupted Store landed.
        on_server = campus.server(0).volumes["u-alice"].read(
            path[len(HOME):]
        )
        assert on_server == blob

    # Rejections can never exceed injected corruptions (non-CALL/REPLY
    # datagrams judged "corrupted" are delivered unchanged, so <=).
    assert _rejections(campus) <= campus.fault_scheduler.stats["link_corrupted"]


@pytest.mark.parametrize("mode", ["prototype", "revised"])
def test_corruption_is_detected_not_just_absent(mode):
    """With a heavily corrupting link the MAC layer must actually fire —
    guards against a silently disabled integrity check making the property
    above pass vacuously."""
    campus = _corrupting_campus(mode, seed=11, corrupt=0.5)
    session = alice_session(campus, "ws1-0")
    for index in range(6):
        run(campus, session.write_file(f"{HOME}/g{index}", b"x%d" % index))
        campus.workstation("ws1-0").venus.cache.invalidate_all()
        assert run(campus, session.read_file(f"{HOME}/g{index}")) == b"x%d" % index
    assert campus.fault_scheduler.stats["link_corrupted"] > 0
    assert _rejections(campus) > 0
