"""Property-based tests: the mutual-authentication handshake."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import ClientHandshake, ServerHandshake, derive_user_key
from repro.errors import AuthenticationFailure

usernames = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=24
)
passwords = st.text(min_size=0, max_size=32)
entropies = st.binary(min_size=1, max_size=24)


@given(usernames, passwords, entropies, entropies)
@settings(max_examples=150)
def test_honest_handshake_always_succeeds(username, password, e1, e2):
    key = derive_user_key(username, password)
    client = ClientHandshake(username, key, e1)
    server = ServerHandshake(lambda u: {username: key}[u], e2)
    name, hello = client.hello()
    challenge = server.respond(name, hello)
    confirm = client.verify_server(challenge)
    server.verify_client(confirm)
    assert client.session_key == server.session_key
    assert client.session_key is not None


@given(usernames, passwords, passwords, entropies)
def test_wrong_password_never_succeeds(username, real_pw, guess_pw, entropy):
    if real_pw == guess_pw:
        return
    real = derive_user_key(username, real_pw)
    guess = derive_user_key(username, guess_pw)
    client = ClientHandshake(username, guess, entropy)
    server = ServerHandshake(lambda u: real, entropy + b"s")
    name, hello = client.hello()
    with pytest.raises(AuthenticationFailure):
        server.respond(name, hello)


@given(usernames, passwords, entropies, st.integers(0, 10_000), st.integers(1, 255))
def test_tampered_challenge_never_accepted(username, password, entropy, position, flip):
    key = derive_user_key(username, password)
    client = ClientHandshake(username, key, entropy)
    server = ServerHandshake(lambda u: key, entropy + b"s")
    name, hello = client.hello()
    challenge = bytearray(server.respond(name, hello))
    challenge[position % len(challenge)] ^= flip
    with pytest.raises(AuthenticationFailure):
        client.verify_server(bytes(challenge))


@given(usernames, passwords, entropies, entropies)
def test_distinct_entropy_distinct_session_keys(username, password, e1, e2):
    """Fresh nonces every connection: replaying yields different keys."""
    if e1 == e2:
        return
    key = derive_user_key(username, password)

    def complete(entropy):
        client = ClientHandshake(username, key, entropy)
        server = ServerHandshake(lambda u: key, entropy + b"|srv")
        name, hello = client.hello()
        confirm = client.verify_server(server.respond(name, hello))
        server.verify_client(confirm)
        return client.session_key

    assert complete(e1) != complete(e2)


@given(usernames, passwords, entropies)
def test_wire_never_leaks_key_material(username, password, entropy):
    key = derive_user_key(username, password)
    client = ClientHandshake(username, key, entropy)
    server = ServerHandshake(lambda u: key, entropy + b"s")
    name, hello = client.hello()
    challenge = server.respond(name, hello)
    confirm = client.verify_server(challenge)
    server.verify_client(confirm)
    wire = hello + challenge + confirm
    assert key not in wire
    assert client.session_key not in wire
    if len(password) >= 4:
        assert password.encode() not in wire
