"""Property-based tests: discrete-event kernel ordering invariants."""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator
from repro.sim.rand import WorkloadRandom

delays = st.lists(st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=30)


@given(delays)
@settings(max_examples=150)
def test_wakeups_in_nondecreasing_time_order(delay_list):
    sim = Simulator()
    wake_times = []

    def sleeper(delay):
        yield sim.timeout(delay)
        wake_times.append(sim.now)

    for delay in delay_list:
        sim.process(sleeper(delay))
    sim.run()
    assert wake_times == sorted(wake_times)
    assert len(wake_times) == len(delay_list)


@given(delays)
def test_clock_ends_at_max_delay(delay_list):
    sim = Simulator()
    for delay in delay_list:
        sim.process(iter_timeout(sim, delay))
    sim.run()
    assert sim.now == max(delay_list)


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


@given(delays)
def test_equal_delays_fifo(delay_list):
    """Processes scheduled for the same instant run in creation order."""
    sim = Simulator()
    order = []
    constant = 5.0

    def sleeper(tag):
        yield sim.timeout(constant)
        order.append(tag)

    for tag in range(len(delay_list)):
        sim.process(sleeper(tag))
    sim.run()
    assert order == list(range(len(delay_list)))


@given(st.lists(st.tuples(st.floats(0.001, 50.0), st.floats(0.001, 50.0)), min_size=1, max_size=15))
def test_resource_conservation(jobs):
    """A capacity-1 resource never overlaps holders and serves everyone."""
    from repro.sim import Resource

    sim = Simulator()
    resource = Resource(sim, capacity=1)
    spans = []

    def worker(arrive, hold):
        yield sim.timeout(arrive)
        request = resource.request()
        yield request
        start = sim.now
        yield sim.timeout(hold)
        resource.release(request)
        spans.append((start, sim.now))

    for arrive, hold in jobs:
        sim.process(worker(arrive, hold))
    sim.run()
    assert len(spans) == len(jobs)
    spans.sort()
    for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
        assert e1 <= s2 + 1e-9, "two holders overlapped on a capacity-1 resource"


@given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=1, max_value=50))
def test_seeded_simulation_reproducible(seed, njobs):
    """Identical seeds yield byte-identical event orderings."""

    def run_once():
        sim = Simulator()
        rng = WorkloadRandom(seed)
        log = []

        def worker(tag):
            for _ in range(3):
                yield sim.timeout(rng.exponential(5.0))
                log.append((tag, sim.now))

        for tag in range(njobs):
            sim.process(worker(tag))
        sim.run()
        return log

    assert run_once() == run_once()
