"""Property-based tests: the location database's longest-prefix contract."""

from hypothesis import given, settings, strategies as st

from repro.errors import FileNotFound, InvalidArgument
from repro.storage import pathutil
from repro.vice.location import LocationDatabase

segments = st.sampled_from(["usr", "proj", "unix", "a", "b"])
mounts = st.lists(
    st.lists(segments, min_size=0, max_size=3), min_size=1, max_size=8, unique_by=tuple
)
lookups = st.lists(st.lists(segments, min_size=0, max_size=5), min_size=1, max_size=10)


def build_db(mount_lists):
    db = LocationDatabase()
    for index, parts in enumerate(mount_lists):
        path = "/" + "/".join(parts)
        try:
            db.add(path, f"vol{index}", f"server{index % 3}")
        except InvalidArgument:
            pass  # duplicate mount path after normalization
    return db


@given(mounts, lookups)
@settings(max_examples=200)
def test_resolution_matches_bruteforce_longest_prefix(mount_lists, lookup_lists):
    db = build_db(mount_lists)
    known = {entry.mount_path: entry for entry in db.entries()}
    for parts in lookup_lists:
        path = pathutil.normalize("/" + "/".join(parts))
        # Brute-force: the longest known mount that prefixes the path.
        candidates = [
            mount for mount in known
            if path == mount or path.startswith(mount.rstrip("/") + "/") or mount == "/"
        ]
        try:
            entry, rest = db.resolve(path)
        except FileNotFound:
            assert not candidates
            continue
        assert candidates
        best = max(candidates, key=len)
        assert entry.mount_path == best
        # Reconstructing mount + rest gives back the path.
        rebuilt = best if rest == "/" else (
            rest if best == "/" else best + rest
        )
        assert pathutil.normalize(rebuilt) == path


@given(mounts)
def test_snapshot_roundtrip_preserves_resolution(mount_lists):
    db = build_db(mount_lists)
    replica = LocationDatabase()
    replica.load_snapshot(db.snapshot())
    for entry in db.entries():
        probe = entry.mount_path.rstrip("/") + "/somefile"
        assert replica.resolve(probe)[0].volume_id == db.resolve(probe)[0].volume_id


@given(mounts)
def test_every_volume_id_unique_and_reachable(mount_lists):
    db = build_db(mount_lists)
    ids = [entry.volume_id for entry in db.entries()]
    assert len(ids) == len(set(ids))
    for entry in db.entries():
        assert db.entry_for_volume(entry.volume_id) is entry
