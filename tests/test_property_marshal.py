"""Property-based tests: marshalling round-trips arbitrary values."""

from hypothesis import given, settings, strategies as st

from repro.rpc import marshal

# Values the wire format supports, nested a few levels deep.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),  # NaN != NaN breaks equality, by design
    st.text(max_size=64),
    st.binary(max_size=256),
)
values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(st.text(max_size=16), children, max_size=6),
    ),
    max_leaves=25,
)


@given(values)
@settings(max_examples=300)
def test_roundtrip_identity(value):
    assert marshal.loads(marshal.dumps(value)) == value


@given(values)
def test_wire_size_consistent(value):
    assert marshal.wire_size(value) == len(marshal.dumps(value))


@given(values, values)
def test_encoding_injective_on_unequal_values(a, b):
    if a != b:
        assert marshal.dumps(a) != marshal.dumps(b)


@given(st.binary(max_size=64))
def test_arbitrary_bytes_never_crash_loads(data):
    """loads() either returns a value or raises MarshalError — nothing else."""
    try:
        marshal.loads(data)
    except marshal.MarshalError:
        pass


@given(values, st.integers(min_value=1, max_value=8))
def test_truncation_always_detected(value, cut):
    data = marshal.dumps(value)
    if cut < len(data):
        try:
            decoded = marshal.loads(data[:-cut])
        except marshal.MarshalError:
            return
        # Truncation may accidentally decode (e.g. shorter string), but it
        # must never silently yield the original value.
        assert decoded != value or marshal.dumps(decoded) != data
