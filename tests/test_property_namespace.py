"""Property-based tests: namespace classification under random symlinks."""

from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.storage.unixfs import UnixFileSystem
from repro.virtue.namespace import Namespace

DIRS = ["etc", "home", "data"]
LINK_TARGETS = ["/vice/unix/bin", "/vice/usr/x", "/etc", "/home", "/data",
                "/missing", "loop"]

link_specs = st.lists(
    st.tuples(st.sampled_from(["l0", "l1", "l2", "loop"]), st.sampled_from(LINK_TARGETS)),
    max_size=4,
    unique_by=lambda spec: spec[0],
)
probes = st.lists(
    st.sampled_from(
        ["/etc/passwd", "/vice/x", "/l0", "/l0/sub", "/l1/deep/er", "/l2",
         "/loop/x", "/home", "/data/file"]
    ),
    min_size=1,
    max_size=6,
)


def build_namespace(links):
    fs = UnixFileSystem()
    fs.makedirs("/vice")
    for directory in DIRS:
        fs.makedirs("/" + directory)
    fs.create("/etc/passwd", b"root")
    for name, target in links:
        fs.symlink("/" + name, target)
    return Namespace(fs)


@given(link_specs, probes)
@settings(max_examples=250)
def test_classify_is_total_and_well_formed(links, paths):
    """classify() always returns ('vice'|'local', absolute-path) or raises a
    library error — never crashes, never returns a relative path."""
    ns = build_namespace(links)
    for path in paths:
        try:
            kind, resolved = ns.classify(path)
        except ReproError:
            continue
        assert kind in ("vice", "local")
        assert resolved.startswith("/")
        if kind == "vice":
            # Vice paths never keep the mount prefix.
            assert not resolved.startswith("/vice/")


@given(link_specs, probes)
def test_classify_deterministic(links, paths):
    ns = build_namespace(links)
    for path in paths:
        try:
            first = ns.classify(path)
        except ReproError as exc:
            first = type(exc)
        try:
            second = ns.classify(path)
        except ReproError as exc:
            second = type(exc)
        assert first == second


@given(link_specs)
def test_vice_paths_roundtrip(links):
    ns = build_namespace(links)
    for vice_path in ("/", "/usr/x", "/unix/sun/bin/cc"):
        ws_path = ns.to_workstation(vice_path)
        kind, back = ns.classify(ws_path)
        assert kind == "vice"
        assert back == vice_path


@given(link_specs, probes)
def test_local_results_resolve_in_local_fs(links, paths):
    """A 'local' classification points at something the local FS can handle
    (existing object, or a creatable leaf in an existing directory)."""
    ns = build_namespace(links)
    for path in paths:
        try:
            kind, resolved = ns.classify(path)
        except ReproError:
            continue
        if kind != "local":
            continue
        from repro.storage import pathutil

        parent = pathutil.dirname(resolved)
        assert ns.local_fs.exists(parent), f"{resolved} has no parent dir"
