"""Property-based tests: routing invariants over random cluster topologies."""

from hypothesis import given, settings, strategies as st

from repro.net import Network
from repro.sim import Simulator

cluster_counts = st.integers(min_value=1, max_value=6)
node_placements = st.lists(st.integers(min_value=0, max_value=5), min_size=2, max_size=10)


def build_campus_net(clusters, placements):
    """A backbone with ``clusters`` bridged segments and nodes placed on them."""
    sim = Simulator()
    net = Network(sim)
    net.add_segment("backbone")
    for index in range(clusters):
        net.add_segment(f"cluster{index}")
        net.add_bridge(f"bridge{index}", f"cluster{index}", "backbone")
    nodes = []
    for index, placement in enumerate(placements):
        segment = f"cluster{placement % clusters}"
        name = f"n{index}"
        net.attach(name, segment)
        nodes.append(name)
    return sim, net, nodes


@given(cluster_counts, node_placements)
@settings(max_examples=150)
def test_routes_start_and_end_correctly(clusters, placements):
    _sim, net, nodes = build_campus_net(clusters, placements)
    for src in nodes:
        for dst in nodes:
            route = net.route(src, dst)
            assert route[0] is net.interfaces[src].segment
            assert route[-1] is net.interfaces[dst].segment


@given(cluster_counts, node_placements)
@settings(max_examples=150)
def test_hop_counts_symmetric_and_bounded(clusters, placements):
    _sim, net, nodes = build_campus_net(clusters, placements)
    for src in nodes:
        for dst in nodes:
            hops = net.hop_count(src, dst)
            assert hops == net.hop_count(dst, src)
            same = net.interfaces[src].segment is net.interfaces[dst].segment
            # Same cluster: one segment. Cross-cluster: exactly via backbone.
            assert hops == (1 if same else 3)


@given(cluster_counts, node_placements)
@settings(max_examples=100)
def test_routes_never_repeat_segments(clusters, placements):
    _sim, net, nodes = build_campus_net(clusters, placements)
    for src in nodes:
        for dst in nodes:
            names = [segment.name for segment in net.route(src, dst)]
            assert len(names) == len(set(names)), "route visited a segment twice"


@given(cluster_counts, node_placements, st.integers(min_value=0, max_value=5))
@settings(max_examples=100)
def test_partition_cuts_exactly_the_partitioned_cluster(clusters, placements, victim):
    from repro.errors import SimulationError

    _sim, net, nodes = build_campus_net(clusters, placements)
    victim_segment = f"cluster{victim % clusters}"
    net.partition(victim_segment)
    for src in nodes:
        for dst in nodes:
            src_seg = net.interfaces[src].segment.name
            dst_seg = net.interfaces[dst].segment.name
            cut = victim_segment in (src_seg, dst_seg) and src_seg != dst_seg
            if src_seg == dst_seg:
                # Intra-segment traffic never needs the bridges.
                assert net.hop_count(src, dst) == 1
            elif cut:
                try:
                    net.route(src, dst)
                    assert False, "route through a partitioned segment"
                except SimulationError:
                    pass
            else:
                assert net.hop_count(src, dst) == 3
    # Healing restores full connectivity.
    net.heal(victim_segment)
    for src in nodes:
        for dst in nodes:
            assert net.hop_count(src, dst) in (1, 3)
