"""Property-based tests: invariants of the protection domain."""

from hypothesis import given, settings, strategies as st

from repro.vice.protection import AccessList, ProtectionDatabase

USERS = ["u0", "u1", "u2"]
GROUPS = ["g0", "g1", "g2", "g3"]
RIGHT_STRINGS = st.text(alphabet="rwidlak", max_size=7)

memberships = st.lists(
    st.tuples(st.sampled_from(GROUPS), st.sampled_from(USERS + GROUPS)),
    max_size=12,
)
acl_entries = st.lists(
    st.tuples(
        st.sampled_from(USERS + GROUPS + ["system:anyuser"]),
        RIGHT_STRINGS,
        st.booleans(),  # True = negative entry
    ),
    max_size=10,
)


def build_db(member_edges):
    db = ProtectionDatabase()
    for user in USERS:
        db.add_user(user)
    for group in GROUPS:
        db.add_group(group)
    for group, member in member_edges:
        if group != member:
            db.add_member(group, member)
    return db


def build_acl(entries):
    acl = AccessList()
    for principal, rights, negative in entries:
        if negative:
            acl.deny(principal, rights)
        else:
            acl.grant(principal, rights)
    return acl


@given(memberships)
@settings(max_examples=150)
def test_cps_contains_self_and_anyuser(member_edges):
    db = build_db(member_edges)
    for user in USERS:
        cps = db.cps(user)
        assert user in cps
        assert "system:anyuser" in cps


@given(memberships)
def test_cps_is_transitively_closed(member_edges):
    """If g is in the CPS and g is a member of h, then h is in the CPS."""
    db = build_db(member_edges)
    for user in USERS:
        cps = db.cps(user)
        for group, members in db.groups.items():
            if any(member in cps for member in members):
                assert group in cps


@given(memberships, acl_entries)
def test_adding_membership_never_shrinks_positive_rights(member_edges, entries):
    """Positive grants are monotone in group membership (no negatives)."""
    acl = build_acl([e for e in entries if not e[2]])  # positives only
    db = build_db(member_edges)
    before = {user: db.rights_on(acl, user) for user in USERS}
    db.add_member(GROUPS[0], USERS[0])
    after = db.rights_on(acl, USERS[0])
    assert before[USERS[0]] <= after


@given(memberships, acl_entries, RIGHT_STRINGS)
def test_negative_entry_always_removes_rights(member_edges, entries, denied):
    """After denying rights to a user directly, none of them remain —
    regardless of what any group grants (rapid revocation works)."""
    db = build_db(member_edges)
    acl = build_acl(entries)
    acl.deny(USERS[1], denied)
    remaining = db.rights_on(acl, USERS[1])
    assert not (set(denied) & remaining)


@given(memberships, acl_entries)
def test_effective_rights_subset_of_all_positive(member_edges, entries):
    db = build_db(member_edges)
    acl = build_acl(entries)
    every_positive = set()
    for rights in acl.positive.values():
        every_positive |= rights
    for user in USERS:
        assert db.rights_on(acl, user) <= every_positive


@given(acl_entries)
def test_acl_dict_roundtrip(entries):
    acl = build_acl(entries)
    restored = AccessList.from_dict(acl.as_dict())
    assert restored.positive == acl.positive
    assert restored.negative == acl.negative


@given(memberships)
def test_snapshot_roundtrip_preserves_cps(member_edges):
    db = build_db(member_edges)
    replica = ProtectionDatabase()
    replica.load_snapshot(db.snapshot())
    for user in USERS:
        assert replica.cps(user) == db.cps(user)
