"""Property-based tests: the Unix file system against a flat-dict oracle.

A random sequence of create/write/unlink/mkdir/rename operations is applied
both to :class:`UnixFileSystem` and to a trivially correct model (a dict of
path -> contents); afterwards the two must agree exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import FileSystemError, ReproError
from repro.storage.unixfs import FileType, UnixFileSystem

names = st.sampled_from(["a", "b", "c", "dir1", "dir2", "f.txt", "x"])
segments = st.lists(names, min_size=1, max_size=3)
contents = st.binary(max_size=64)


def to_path(parts):
    return "/" + "/".join(parts)


class FileSystemMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.fs = UnixFileSystem()
        self.model_files = {}  # path -> bytes
        self.model_dirs = {"/"}

    def _parent_ok(self, parts):
        return to_path(parts[:-1]) in self.model_dirs if len(parts) > 1 else True

    @rule(parts=segments, data=contents)
    def create_file(self, parts, data):
        path = to_path(parts)
        try:
            self.fs.create(path, data)
            created = True
        except ReproError:
            created = False
        should = (
            self._parent_ok(parts)
            and path not in self.model_files
            and path not in self.model_dirs
            and not any(d.startswith(path + "/") for d in self.model_dirs)
        )
        assert created == should
        if created:
            self.model_files[path] = data

    @rule(parts=segments)
    def make_dir(self, parts):
        path = to_path(parts)
        try:
            self.fs.mkdir(path)
            made = True
        except ReproError:
            made = False
        if made:
            self.model_dirs.add(path)
            assert path not in self.model_files

    @rule(parts=segments, data=contents)
    def overwrite(self, parts, data):
        path = to_path(parts)
        if path in self.model_files:
            self.fs.write(path, data)
            self.model_files[path] = data

    @rule(parts=segments)
    def unlink(self, parts):
        path = to_path(parts)
        try:
            self.fs.unlink(path)
            removed = True
        except ReproError:
            removed = False
        assert removed == (path in self.model_files)
        self.model_files.pop(path, None)

    @rule(src=segments, dst=segments)
    def rename_file(self, src, dst):
        old, new = to_path(src), to_path(dst)
        if old not in self.model_files or old == new:
            return
        try:
            self.fs.rename(old, new)
            moved = True
        except ReproError:
            moved = False
        if moved:
            data = self.model_files.pop(old)
            # rename may replace an existing file
            self.model_files[new] = data

    @invariant()
    def model_agrees(self):
        # Every model file exists with the right bytes.
        for path, data in self.model_files.items():
            assert self.fs.read(path) == data
        # Every model dir exists as a directory.
        for path in self.model_dirs:
            node = self.fs.resolve(path)
            assert node.file_type == FileType.DIRECTORY
        # No extra files beyond the model.
        actual_files = {
            path for path, node in self.fs.walk("/") if node.file_type == FileType.FILE
        }
        assert actual_files == set(self.model_files)

    @invariant()
    def byte_accounting_exact(self):
        assert self.fs.total_bytes == sum(len(d) for d in self.model_files.values())


TestFileSystemMachine = FileSystemMachine.TestCase
TestFileSystemMachine.settings = settings(max_examples=60, stateful_step_count=30)


@given(st.lists(st.tuples(segments, contents), max_size=20))
def test_versions_strictly_increase_per_file(writes):
    fs = UnixFileSystem()
    seen = {}
    for parts, data in writes:
        path = to_path(parts)
        try:
            node = fs.write(path, data)
        except FileSystemError:
            continue
        if path in seen:
            assert node.version > seen[path]
        seen[path] = node.version
