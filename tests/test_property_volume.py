"""Property-based tests: volume invariants under random operation streams."""

from hypothesis import given, settings, strategies as st

from repro.errors import ReproError
from repro.storage.unixfs import FileType
from repro.vice.volume import Volume

names = st.sampled_from([f"f{i}" for i in range(6)] + ["d0", "d1"])
contents = st.binary(max_size=120)
operations = st.lists(
    st.tuples(
        st.sampled_from(["create", "write", "unlink", "mkdir", "rename"]),
        names,
        names,
        contents,
    ),
    max_size=40,
)


def apply_ops(volume, ops):
    for op, name_a, name_b, data in ops:
        try:
            if op == "create":
                volume.create_file(f"/{name_a}", data, owner="u")
            elif op == "write":
                volume.write(f"/{name_a}", data, owner="u")
            elif op == "unlink":
                volume.unlink(f"/{name_a}")
            elif op == "mkdir":
                volume.mkdir(f"/{name_a}", owner="u")
            elif op == "rename":
                volume.rename(f"/{name_a}", f"/{name_b}")
        except ReproError:
            pass  # collisions/missing targets are fine; invariants must hold


@given(operations)
@settings(max_examples=120)
def test_used_bytes_always_matches_tree(ops):
    volume = Volume("v", "test", owner="u")
    apply_ops(volume, ops)
    actual = sum(
        len(node.data)
        for _path, node in volume.fs.walk("/")
        if node.file_type == FileType.FILE
    )
    assert volume.used_bytes == actual


@given(operations)
@settings(max_examples=120)
def test_vnode_index_always_complete_and_exact(ops):
    volume = Volume("v", "test", owner="u")
    apply_ops(volume, ops)
    reachable = {node.number for _path, node in volume.fs.walk("/")}
    assert set(volume._inodes) == reachable
    for _path, node in volume.fs.walk("/"):
        assert volume.inode_by_vnode(node.number) is node


@given(operations)
@settings(max_examples=120)
def test_path_of_inverts_resolution(ops):
    volume = Volume("v", "test", owner="u")
    apply_ops(volume, ops)
    for path, node in volume.fs.walk("/"):
        assert volume.path_of(node.number) == path


@given(operations)
@settings(max_examples=120)
def test_every_directory_has_an_acl(ops):
    volume = Volume("v", "test", owner="u")
    apply_ops(volume, ops)
    for _path, node in volume.fs.walk("/"):
        if node.file_type == FileType.DIRECTORY:
            assert node.number in volume.acls


@given(operations, st.integers(min_value=50, max_value=400))
@settings(max_examples=120)
def test_quota_never_exceeded(ops, quota):
    volume = Volume("v", "test", owner="u", quota_bytes=quota)
    apply_ops(volume, ops)
    assert volume.used_bytes <= quota


@given(operations)
@settings(max_examples=60)
def test_snapshot_roundtrip_after_any_history(ops):
    volume = Volume("v", "test", owner="u")
    apply_ops(volume, ops)
    restored = Volume.from_snapshot(volume.snapshot())
    original = {
        path: node.data
        for path, node in volume.fs.walk("/")
        if node.file_type == FileType.FILE
    }
    recovered = {
        path: node.data
        for path, node in restored.fs.walk("/")
        if node.file_type == FileType.FILE
    }
    assert original == recovered
    assert restored.used_bytes == volume.used_bytes


@given(operations)
@settings(max_examples=60)
def test_salvage_of_healthy_volume_is_a_noop(ops):
    volume = Volume("v", "test", owner="u")
    apply_ops(volume, ops)
    before = {
        path: node.data
        for path, node in volume.fs.walk("/")
        if node.file_type == FileType.FILE
    }
    volume.take_offline()
    report = volume.salvage()
    assert all(count == 0 for count in report.values())
    volume.bring_online()
    after = {
        path: node.data
        for path, node in volume.fs.walk("/")
        if node.file_type == FileType.FILE
    }
    assert before == after
