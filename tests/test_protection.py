"""Unit tests for the protection domain: groups, CPS, ACLs, negative rights."""

import pytest

from repro.errors import UnknownPrincipal
from repro.vice.protection import AccessList, ProtectionDatabase, Rights


@pytest.fixture
def db():
    database = ProtectionDatabase()
    database.add_user("satya")
    database.add_user("howard")
    database.add_user("mallory")
    return database


class TestRights:
    def test_parse_valid(self):
        assert Rights.parse("rl") == frozenset("rl")
        assert Rights.parse("rwidlak") == Rights.ALL

    def test_parse_invalid_letter(self):
        with pytest.raises(ValueError):
            Rights.parse("rx")

    def test_parse_empty(self):
        assert Rights.parse("") == frozenset()


class TestGroupsAndCPS:
    def test_cps_includes_self_and_anyuser(self, db):
        assert db.cps("satya") == frozenset({"satya", "system:anyuser"})

    def test_direct_membership(self, db):
        db.add_group("faculty")
        db.add_member("faculty", "satya")
        assert "faculty" in db.cps("satya")
        assert "faculty" not in db.cps("howard")

    def test_recursive_membership(self, db):
        db.add_group("itc")
        db.add_group("cmu")
        db.add_member("itc", "satya")
        db.add_member("cmu", "itc")  # group inside group, Grapevine-style
        cps = db.cps("satya")
        assert "itc" in cps
        assert "cmu" in cps

    def test_deep_nesting(self, db):
        previous = None
        for level in range(10):
            group = f"g{level}"
            db.add_group(group)
            if previous is None:
                db.add_member(group, "satya")
            else:
                db.add_member(group, previous)
            previous = group
        assert "g9" in db.cps("satya")

    def test_membership_cycle_terminates(self, db):
        db.add_group("a")
        db.add_group("b")
        db.add_member("a", "b")
        db.add_member("b", "a")
        db.add_member("a", "satya")
        cps = db.cps("satya")
        assert {"a", "b"} <= cps

    def test_cps_of_unknown_user(self, db):
        with pytest.raises(UnknownPrincipal):
            db.cps("nobody")

    def test_add_member_requires_existing_principals(self, db):
        db.add_group("g")
        with pytest.raises(UnknownPrincipal):
            db.add_member("g", "ghost")
        with pytest.raises(UnknownPrincipal):
            db.add_member("ghost-group", "satya")

    def test_remove_member(self, db):
        db.add_group("g")
        db.add_member("g", "satya")
        db.remove_member("g", "satya")
        assert "g" not in db.cps("satya")

    def test_remove_user_scrubs_groups(self, db):
        db.add_group("g")
        db.add_member("g", "mallory")
        db.remove_user("mallory")
        assert "mallory" not in db.groups["g"]
        with pytest.raises(UnknownPrincipal):
            db.cps("mallory")

    def test_remove_group_scrubs_containers(self, db):
        db.add_group("inner")
        db.add_group("outer")
        db.add_member("outer", "inner")
        db.remove_group("inner")
        assert "inner" not in db.groups["outer"]

    def test_version_increments_on_mutation(self, db):
        before = db.version
        db.add_group("g")
        assert db.version == before + 1

    def test_user_keys(self, db):
        db.add_user("keyed", b"k" * 32)
        assert db.user_key("keyed") == b"k" * 32
        with pytest.raises(UnknownPrincipal):
            db.user_key("satya-no-key" )


class TestAccessLists:
    def test_union_over_cps(self, db):
        db.add_group("readers")
        db.add_group("writers")
        db.add_member("readers", "satya")
        db.add_member("writers", "satya")
        acl = AccessList()
        acl.grant("readers", "rl")
        acl.grant("writers", "wi")
        assert db.rights_on(acl, "satya") == frozenset("rlwi")

    def test_anyuser_applies_to_everyone(self, db):
        acl = AccessList()
        acl.grant("system:anyuser", "rl")
        assert db.rights_on(acl, "mallory") == frozenset("rl")

    def test_negative_rights_subtract(self, db):
        acl = AccessList()
        acl.grant("system:anyuser", "rl")
        acl.deny("mallory", "r")
        assert db.rights_on(acl, "mallory") == frozenset("l")
        assert db.rights_on(acl, "satya") == frozenset("rl")

    def test_negative_rights_beat_group_grants(self, db):
        """Rapid revocation: a negative entry wins even while the slow
        group-membership removal has not propagated."""
        db.add_group("project")
        db.add_member("project", "mallory")
        acl = AccessList()
        acl.grant("project", "rwidlak")
        acl.deny("mallory", "rwidlak")
        assert db.rights_on(acl, "mallory") == frozenset()

    def test_negative_right_on_group(self, db):
        db.add_group("suspended")
        db.add_member("suspended", "mallory")
        acl = AccessList()
        acl.grant("system:anyuser", "rl")
        acl.deny("suspended", "rl")
        assert db.rights_on(acl, "mallory") == frozenset()

    def test_grant_accumulates(self):
        acl = AccessList()
        acl.grant("u", "r")
        acl.grant("u", "l")
        assert acl.positive["u"] == frozenset("rl")

    def test_drop_removes_both_sides(self, db):
        acl = AccessList()
        acl.grant("satya", "rl")
        acl.deny("satya", "w")
        acl.drop("satya")
        assert db.rights_on(acl, "satya") == frozenset()

    def test_as_dict_roundtrip(self):
        acl = AccessList()
        acl.grant("a", "rl")
        acl.grant("b", "rwidlak")
        acl.deny("c", "w")
        restored = AccessList.from_dict(acl.as_dict())
        assert restored.positive == acl.positive
        assert restored.negative == acl.negative

    def test_copy_is_independent(self):
        acl = AccessList()
        acl.grant("a", "r")
        duplicate = acl.copy()
        duplicate.grant("a", "w")
        assert acl.positive["a"] == frozenset("r")


class TestSnapshot:
    def test_snapshot_roundtrip(self, db):
        db.add_group("g")
        db.add_member("g", "satya")
        db.add_user("keyed", b"\x01" * 32)
        replica = ProtectionDatabase()
        replica.load_snapshot(db.snapshot())
        assert replica.cps("satya") == db.cps("satya")
        assert replica.user_key("keyed") == b"\x01" * 32
        assert replica.version == db.version


class TestCPSCache:
    """The memoized CPS/rights must track every protection-DB mutation."""

    def test_cps_memoized_and_counted(self, db):
        first = db.cps("satya")
        assert db.cps("satya") == first
        assert db.cps_misses == 1
        assert db.cps_hits == 1

    def test_add_member_invalidates_cps(self, db):
        db.add_group("project")
        assert "project" not in db.cps("satya")
        db.add_member("project", "satya")
        assert "project" in db.cps("satya")

    def test_remove_member_invalidates_cps(self, db):
        db.add_group("project")
        db.add_member("project", "satya")
        assert "project" in db.cps("satya")
        db.remove_member("project", "satya")
        assert "project" not in db.cps("satya")

    def test_remove_group_invalidates_cps(self, db):
        db.add_group("outer")
        db.add_group("inner")
        db.add_member("inner", "satya")
        db.add_member("outer", "inner")
        assert db.cps("satya") >= {"inner", "outer"}
        db.remove_group("outer")
        cps = db.cps("satya")
        assert "inner" in cps and "outer" not in cps

    def test_load_snapshot_invalidates_cps(self, db):
        # Same version number on both sides: a replica that pinned its
        # cache to the version alone would serve the stale CPS.
        other = ProtectionDatabase()
        other.add_user("satya")
        other.add_group("elsewhere")
        other.add_member("elsewhere", "satya")
        while db.version < other.version:
            db.add_user(f"filler{db.version}")
        assert db.version == other.version
        assert "elsewhere" not in db.cps("satya")
        db.load_snapshot(other.snapshot())
        assert "elsewhere" in db.cps("satya")

    def test_negative_rights_correct_after_membership_change(self, db):
        db.add_group("suspended")
        acl = AccessList()
        acl.grant("system:anyuser", "rl")
        acl.deny("suspended", "rl")
        assert db.rights_on(acl, "mallory") == frozenset("rl")
        db.add_member("suspended", "mallory")  # revocation takes effect
        assert db.rights_on(acl, "mallory") == frozenset()
        db.remove_member("suspended", "mallory")
        assert db.rights_on(acl, "mallory") == frozenset("rl")

    def test_rights_cache_invalidated_by_acl_mutation(self, db):
        acl = AccessList()
        acl.grant("satya", "rl")
        assert db.rights_on(acl, "satya") == frozenset("rl")
        acl.grant("satya", "w")
        assert db.rights_on(acl, "satya") == frozenset("rlw")
        acl.deny("satya", "r")
        assert db.rights_on(acl, "satya") == frozenset("lw")
        acl.drop("satya")
        assert db.rights_on(acl, "satya") == frozenset()

    def test_copied_acl_does_not_share_rights_cache(self, db):
        acl = AccessList()
        acl.grant("satya", "rl")
        assert db.rights_on(acl, "satya") == frozenset("rl")
        clone = acl.copy()
        clone.deny("satya", "r")
        assert db.rights_on(clone, "satya") == frozenset("l")
        assert db.rights_on(acl, "satya") == frozenset("rl")
