"""Tests for read-write volume replication: propagation, heartbeat
failure detection, failover, rejoin and the partition lease fence."""

import pytest

from repro.errors import FileNotFound, LeaseExpired, ServerUnavailable
from repro.faults import partition_plan
from repro.vice.replication import CONTROLLER_NAME, ReplicationConfig
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"


def replicated_campus(factor=2, clusters=3, **overrides):
    return small_campus(
        clusters=clusters,
        workstations_per_cluster=1,
        replication=ReplicationConfig(factor=factor),
        **overrides,
    )


def entry_for(campus, volume_id="u-alice"):
    # Post-failover truth lives in the controller's location database
    # (the campus master is only the construction-time seed).
    controller = campus.replication_controller
    location = campus._location_master if controller is None else controller.location
    return location.entry_for_volume(volume_id)


def settle(campus, seconds):
    campus.run(until=campus.sim.now + seconds)


class TestConfig:
    def test_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            ReplicationConfig(factor=0)

    def test_lease_cannot_outlive_detection(self):
        # A lease longer than the detection time would let a partitioned
        # primary accept a write after its successor was promoted.
        with pytest.raises(ValueError):
            ReplicationConfig(heartbeat_interval=5.0, missed_beats=3,
                              lease_duration=16.0)

    def test_unconfigured_campus_builds_nothing(self):
        campus = small_campus()
        assert campus.replication_controller is None
        assert all(server.replication is None for server in campus.servers)
        assert "replicas" not in entry_for(campus).as_dict()


class TestPropagation:
    def test_write_reaches_every_copy(self):
        campus = replicated_campus(factor=3)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"everywhere"))
        # The store returns at quorum; the last secondary's apply may
        # still be in flight, so let the propagation tail land.
        settle(campus, 5.0)
        entry = entry_for(campus)
        assert len(entry.replicas) == 3
        for name in entry.replicas:
            copy = campus.server(name).volumes["u-alice"]
            assert copy.read("/f") == b"everywhere"

    def test_replicas_share_vnode_numbers(self):
        # Fids must resolve identically at every replica so Venus caches
        # survive a failover.
        campus = replicated_campus(factor=3)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"same fid"))
        settle(campus, 5.0)
        vnodes = {
            campus.server(name).volumes["u-alice"].resolve("/f").number
            for name in entry_for(campus).replicas
        }
        assert len(vnodes) == 1

    def test_secondary_refers_to_primary(self):
        campus = replicated_campus(factor=2)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"via primary"))
        entry = entry_for(campus)
        assert entry.custodian == entry.replicas[0]
        secondary = campus.server(entry.replicas[1]).volumes["u-alice"]
        assert secondary.replica_role == "secondary"

    def test_heartbeats_flow(self):
        campus = replicated_campus(factor=2)
        settle(campus, 30.0)
        controller = campus.replication_controller
        assert controller.heartbeats >= len(campus.servers)
        assert sorted(controller.alive_servers()) == sorted(
            server.host.name for server in campus.servers
        )


class TestFailover:
    def test_crash_promotes_most_up_to_date_survivor(self):
        campus = replicated_campus(factor=3)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"before crash"))
        campus.server(0).host.crash()
        settle(campus, 40.0)  # detection is 15s + a monitor tick
        controller = campus.replication_controller
        assert controller.deaths_declared == 1
        assert not controller.alive["server0"]
        entry = entry_for(campus)
        assert entry.custodian != "server0"
        assert "server0" not in entry.replicas

    def test_clients_ride_through_failover(self):
        campus = replicated_campus(factor=3)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"v1"))
        campus.server(0).host.crash()
        settle(campus, 40.0)
        # The workstation's location hint still names the dead custodian;
        # the failed call forces a hint refresh against the survivors.
        run(campus, session.write_file(f"{HOME}/f", b"v2"))
        assert run(campus, session.read_file(f"{HOME}/f")) == b"v2"
        assert campus.workstation(0).venus.failovers >= 1

    def test_stale_hint_on_remote_workstation_retries(self):
        campus = replicated_campus(factor=3)
        local = alice_session(campus)
        run(campus, local.write_file(f"{HOME}/f", b"hinted"))
        remote = campus.login(1, "alice", "alice-pw")
        assert run(campus, remote.read_file(f"{HOME}/f")) == b"hinted"
        campus.server(0).host.crash()
        settle(campus, 40.0)
        # The cached hint still names the dead custodian; the write must
        # fail against it once, refresh the hint, and land on the new one.
        run(campus, remote.write_file(f"{HOME}/f", b"rehinted"))
        assert campus.workstation(1).venus.failovers >= 1
        entry = entry_for(campus)
        copy = campus.server(entry.custodian).volumes["u-alice"]
        assert copy.read("/f") == b"rehinted"

    def test_failover_recorded_for_availability(self):
        campus = replicated_campus(
            factor=2,
            fault_plan=partition_plan("cluster0", at=120.0, outage=120.0),
        )
        settle(campus, 200.0)
        assert campus.availability.counters.get("failovers", 0) >= 1

    def test_rejoin_demotes_and_resyncs(self):
        campus = replicated_campus(factor=3)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"v1"))
        campus.server(0).host.crash()
        settle(campus, 40.0)
        run(campus, session.write_file(f"{HOME}/f", b"v2"))
        campus.server(0).host.recover()
        settle(campus, 60.0)
        controller = campus.replication_controller
        assert controller.rejoins == 1
        copy = campus.server(0).volumes["u-alice"]
        assert copy.replica_role == "secondary"
        assert copy.read("/f") == b"v2"
        assert "server0" in entry_for(campus).replicas


class TestDivergence:
    def test_crash_mid_propagation_discards_divergent_writes(self):
        # A primary that applied a write locally but crashed before any
        # secondary acknowledged it: the survivors elect a copy without
        # that write, and the rejoining ex-primary must discard it.
        campus = small_campus(
            clusters=2, workstations_per_cluster=1,
            replication=ReplicationConfig(factor=2),
        )
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"base"))
        primary = campus.volume("u-alice")
        # The un-propagated write: applied and versioned at the primary
        # only, exactly what a crash mid-propagation leaves behind.
        primary.bump_version_vector("server0")
        primary.create_file("/orphan", b"never propagated", owner="alice")
        campus.server(0).host.crash()
        settle(campus, 40.0)
        assert entry_for(campus).custodian == "server1"
        remote = campus.login(1, "alice", "alice-pw")
        run(campus, remote.write_file(f"{HOME}/f", b"after failover"))
        campus.server(0).host.recover()
        settle(campus, 60.0)
        rejoined = campus.server(0).volumes["u-alice"]
        assert rejoined.replica_role == "secondary"
        assert rejoined.read("/f") == b"after failover"
        with pytest.raises(FileNotFound):
            rejoined.read("/orphan")
        assert campus.server(0).replication.divergent_discarded >= 1


class TestPartition:
    def test_partitioned_primary_fences_writes(self):
        # cluster0 is cut off: workstations inside can still reach their
        # server, but its lease lapses, so writes fence with LeaseExpired
        # instead of diverging from the promoted replica outside.
        campus = replicated_campus(
            factor=3,
            fault_plan=partition_plan("cluster0", at=300.0, outage=300.0),
        )
        inside = alice_session(campus)
        outside = campus.login(1, "alice", "alice-pw")
        run(campus, inside.write_file(f"{HOME}/f", b"connected"))
        campus.run(until=360.0)  # partition at 300, detection by ~320
        entry = entry_for(campus)
        assert entry.custodian != "server0"
        with pytest.raises((LeaseExpired, ServerUnavailable)):
            run(campus, inside.write_file(f"{HOME}/f", b"split brain?"))
        run(campus, outside.write_file(f"{HOME}/f", b"majority side"))
        campus.run(until=700.0)  # heal at 600, rejoin settles
        assert run(campus, inside.read_file(f"{HOME}/f")) == b"majority side"
