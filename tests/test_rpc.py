"""Unit tests for the RPC package: handshake-over-network, calls, failures."""

import pytest

from repro.crypto import derive_user_key
from repro.errors import (
    AuthenticationFailure,
    FileNotFound,
    NotAuthenticated,
    NotCustodian,
    ServerUnavailable,
)
from repro.hosts import Host
from repro.net import Network
from repro.rpc import EncryptionMode, RpcCosts, RpcNode
from repro.sim import Simulator

ALICE_KEY = derive_user_key("alice", "pw")
KEYS = {"alice": ALICE_KEY}


def build_pair(sim, server_kwargs=None, client_kwargs=None):
    """One client node and one server node on a shared segment."""
    net = Network(sim)
    net.add_segment("lan")
    client_host = Host(sim, net, "client", "lan")
    server_host = Host(sim, net, "server", "lan", cpu_speed=2.0)
    server = RpcNode(
        server_host, auth_key_lookup=lambda user: KEYS[user], **(server_kwargs or {})
    )
    client = RpcNode(client_host, **(client_kwargs or {}))
    return client, server, client_host, server_host


def echo_service(server_host):
    def echo(conn, args, payload):
        yield from server_host.compute(0.001)
        return {"msg": args.get("msg"), "user": conn.username}, payload[::-1]

    return echo


@pytest.fixture
def sim():
    return Simulator()


class TestConnect:
    def test_successful_handshake(self, sim):
        client, server, _ch, _sh = build_pair(sim)

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            return conn

        conn = sim.run_until_complete(sim.process(go()))
        assert conn.established
        assert conn.username == "alice"
        assert server.handshakes_completed == 1
        # Both ends independently derived the same session key.
        assert server.connections[conn.connection_id].session_key == conn.session_key

    def test_wrong_password_refused(self, sim):
        client, _server, _ch, _sh = build_pair(sim)

        def go():
            yield from client.connect("server", "alice", derive_user_key("alice", "bad"))

        with pytest.raises(AuthenticationFailure):
            sim.run_until_complete(sim.process(go()))

    def test_unknown_user_refused(self, sim):
        client, _server, _ch, _sh = build_pair(sim)

        def go():
            yield from client.connect("server", "mallory", derive_user_key("mallory", "x"))

        with pytest.raises(AuthenticationFailure):
            sim.run_until_complete(sim.process(go()))

    def test_node_without_auth_refuses_connections(self, sim):
        client, _server, client_host, _sh = build_pair(sim)
        # The client node runs no auth service; connecting *to* it fails.
        peer = RpcNode(Host(sim, client_host.network, "other", "lan"))

        def go():
            yield from peer.connect("client", "alice", ALICE_KEY)

        with pytest.raises(AuthenticationFailure):
            sim.run_until_complete(sim.process(go()))

    def test_process_server_connection_limit(self, sim):
        client, _server, _ch, _sh = build_pair(
            sim, server_kwargs={"server_mode": "process", "max_server_processes": 1}
        )

        def go():
            yield from client.connect("server", "alice", ALICE_KEY)
            yield from client.connect("server", "alice", ALICE_KEY)

        with pytest.raises(ServerUnavailable, match="processes"):
            sim.run_until_complete(sim.process(go()))


class TestCall:
    def test_call_roundtrip_with_payload(self, sim):
        client, server, _ch, server_host = build_pair(sim)
        server.register("Echo", echo_service(server_host))

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            return (yield from client.call(conn, "Echo", {"msg": "hi"}, payload=b"abc"))

        result, payload = sim.run_until_complete(sim.process(go()))
        assert result == {"msg": "hi", "user": "alice"}
        assert payload == b"cba"

    def test_unknown_procedure_errors(self, sim):
        client, _server, _ch, _sh = build_pair(sim)

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            yield from client.call(conn, "NoSuchProc", {})

        with pytest.raises(Exception, match="no such procedure"):
            sim.run_until_complete(sim.process(go()))

    def test_handler_exception_reraised_at_client(self, sim):
        client, server, _ch, server_host = build_pair(sim)

        def failing(conn, args, payload):
            yield from server_host.compute(0.001)
            raise FileNotFound("/vice/missing")

        server.register("Fail", failing)

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            yield from client.call(conn, "Fail", {})

        with pytest.raises(FileNotFound, match="missing"):
            sim.run_until_complete(sim.process(go()))

    def test_not_custodian_referral_carries_hint(self, sim):
        client, server, _ch, server_host = build_pair(sim)

        def refer(conn, args, payload):
            yield from server_host.compute(0.001)
            raise NotCustodian("server7")

        server.register("Refer", refer)

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            yield from client.call(conn, "Refer", {})

        with pytest.raises(NotCustodian) as excinfo:
            sim.run_until_complete(sim.process(go()))
        assert excinfo.value.custodian_hint == "server7"

    def test_call_on_closed_connection_rejected(self, sim):
        client, _server, _ch, _sh = build_pair(sim)

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            client.close_connection(conn)
            yield from client.call(conn, "Echo", {})

        with pytest.raises(NotAuthenticated):
            sim.run_until_complete(sim.process(go()))

    def test_server_counts_calls_by_procedure(self, sim):
        client, server, _ch, server_host = build_pair(sim)
        server.register("Echo", echo_service(server_host))

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            for _ in range(3):
                yield from client.call(conn, "Echo", {"msg": "x"})

        sim.run_until_complete(sim.process(go()))
        assert server.calls_received.count("Echo") == 3
        assert client.calls_sent.count("Echo") == 3

    def test_bidirectional_calls_on_one_connection(self, sim):
        client, server, client_host, server_host = build_pair(sim)
        server.register("Echo", echo_service(server_host))

        def client_service(conn, args, payload):
            yield from client_host.compute(0.001)
            return {"pong": True}, b""

        client.register("Ping", client_service)

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            server_conn = server.connections[conn.connection_id]
            result, _ = yield from server.call(server_conn, "Ping", {})
            return result

        result = sim.run_until_complete(sim.process(go()))
        assert result == {"pong": True}


class TestEncryptionOnTheWire:
    def test_eavesdropper_sees_only_ciphertext(self, sim):
        client, server, _ch, server_host = build_pair(sim)
        server.register("Echo", echo_service(server_host))
        captured = []
        original = client.host.network.send

        def tap(datagram, kind="data", deliver=True):
            captured.append(datagram)
            return original(datagram, kind, deliver)

        client.host.network.send = tap

        secret = b"the secret design document"

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            yield from client.call(conn, "Echo", {"msg": "classified"}, payload=secret)

        sim.run_until_complete(sim.process(go()))
        for datagram in captured:
            envelope = datagram.payload
            assert secret not in envelope.body
            assert secret not in envelope.payload
            assert b"classified" not in envelope.body

    def test_no_encryption_mode_sends_cleartext(self, sim):
        client, server, _ch, server_host = build_pair(
            sim,
            server_kwargs={"encryption": EncryptionMode.NONE},
            client_kwargs={"encryption": EncryptionMode.NONE},
        )
        server.register("Echo", echo_service(server_host))
        captured = []
        original = client.host.network.send

        def tap(datagram, kind="data", deliver=True):
            captured.append(datagram)
            return original(datagram, kind, deliver)

        client.host.network.send = tap

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            yield from client.call(conn, "Echo", {"msg": "x"}, payload=b"plain payload")

        sim.run_until_complete(sim.process(go()))
        assert any(b"plain payload" in d.payload.payload for d in captured)

    def test_software_encryption_slower_than_hardware(self, sim):
        durations = {}
        for mode in (EncryptionMode.HARDWARE, EncryptionMode.SOFTWARE):
            local_sim = Simulator()
            client, server, _ch, server_host = build_pair(
                local_sim,
                server_kwargs={"encryption": mode},
                client_kwargs={"encryption": mode},
            )
            server.register("Echo", echo_service(server_host))

            def go():
                conn = yield from client.connect("server", "alice", ALICE_KEY)
                yield from client.call(conn, "Echo", {}, payload=b"z" * 100_000)

            start = local_sim.now
            local_sim.run_until_complete(local_sim.process(go()))
            durations[mode] = local_sim.now - start
        assert durations[EncryptionMode.SOFTWARE] > 3 * durations[EncryptionMode.HARDWARE]


class TestFailures:
    def test_dead_server_times_out(self, sim):
        costs = RpcCosts(retransmit_timeout=0.5, max_retries=1)
        client, _server, _ch, server_host = build_pair(
            sim, client_kwargs={"costs": costs}
        )
        server_host.crash()

        def go():
            yield from client.connect("server", "alice", ALICE_KEY)

        with pytest.raises(ServerUnavailable):
            sim.run_until_complete(sim.process(go()))

    def test_crash_after_connect_fails_calls(self, sim):
        costs = RpcCosts(retransmit_timeout=0.5, max_retries=1)
        client, server, _ch, server_host = build_pair(
            sim, client_kwargs={"costs": costs}
        )
        server.register("Echo", echo_service(server_host))

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            server_host.crash()
            yield from client.call(conn, "Echo", {})

        with pytest.raises(ServerUnavailable):
            sim.run_until_complete(sim.process(go()))

    def test_recovered_server_answers_again(self, sim):
        costs = RpcCosts(retransmit_timeout=0.5, max_retries=1)
        client, server, _ch, server_host = build_pair(
            sim, client_kwargs={"costs": costs}
        )
        server.register("Echo", echo_service(server_host))

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            server_host.crash()
            try:
                yield from client.call(conn, "Echo", {"msg": 1})
            except ServerUnavailable:
                pass
            server_host.recover()
            return (yield from client.call(conn, "Echo", {"msg": 2}))

        result, _ = sim.run_until_complete(sim.process(go()))
        assert result["msg"] == 2

    def test_lossy_network_retransmits_and_succeeds(self, sim):
        costs = RpcCosts(loss_probability=0.3, retransmit_timeout=0.5, max_retries=10)
        client, server, _ch, server_host = build_pair(
            sim,
            server_kwargs={"costs": costs},
            client_kwargs={"costs": costs},
        )
        server.register("Echo", echo_service(server_host))

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            results = []
            for index in range(10):
                result, _ = yield from client.call(conn, "Echo", {"msg": index})
                results.append(result["msg"])
            return results

        results = sim.run_until_complete(sim.process(go()))
        assert results == list(range(10))
        assert client.retransmissions > 0

    def test_duplicate_calls_not_reexecuted(self, sim):
        """At-most-once: retransmissions must not double-run handlers."""
        costs = RpcCosts(loss_probability=0.4, retransmit_timeout=0.3, max_retries=20)
        client, server, _ch, server_host = build_pair(
            sim,
            server_kwargs={"costs": costs},
            client_kwargs={"costs": costs},
        )
        executions = {"count": 0}

        def counted(conn, args, payload):
            executions["count"] += 1
            yield from server_host.compute(0.001)
            return {"n": executions["count"]}, b""

        server.register("Counted", counted)

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            for _ in range(15):
                yield from client.call(conn, "Counted", {})

        sim.run_until_complete(sim.process(go()))
        assert executions["count"] == 15
