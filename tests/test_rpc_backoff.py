"""Tests for RPC retransmission backoff: determinism, growth, metrics.

The defaults (``retransmit_backoff=1.0``, ``retransmit_jitter=0.0``)
must reproduce the historical fixed-interval retransmission exactly —
same virtual timings, and nothing drawn from the node's random stream —
so unconfigured campuses replay byte-for-byte across this change.
"""

import pytest

from repro.crypto import derive_user_key
from repro.errors import ServerUnavailable
from repro.hosts import Host
from repro.net import Network
from repro.rpc import RpcCosts, RpcNode
from repro.sim import Simulator
from repro.system.config import SystemConfig
from repro.system.topology import rpc_costs_for
from repro.vice.replication import ReplicationConfig

ALICE_KEY = derive_user_key("alice", "pw")
KEYS = {"alice": ALICE_KEY}


def build_pair(sim, costs=None):
    net = Network(sim)
    net.add_segment("lan")
    client_host = Host(sim, net, "client", "lan")
    server_host = Host(sim, net, "server", "lan", cpu_speed=2.0)
    server = RpcNode(server_host, auth_key_lookup=lambda user: KEYS[user])
    client = RpcNode(client_host, costs=costs)
    server.register("Ping", lambda conn, args, payload: ({"ok": True}, b""))
    return client, server, client_host, server_host


def elapsed_until_unavailable(costs=None):
    """Virtual seconds a call against a crashed server takes to fail,
    plus the client node (for counter inspection)."""
    sim = Simulator()
    client, _server, _ch, server_host = build_pair(sim, costs=costs)

    def go():
        conn = yield from client.connect("server", "alice", ALICE_KEY)
        server_host.crash()
        start = sim.now
        try:
            yield from client.call(conn, "Ping", {})
        except ServerUnavailable:
            return sim.now - start
        raise AssertionError("call against a dead server succeeded")

    return sim.run_until_complete(sim.process(go())), client


class TestDefaults:
    def test_default_costs_keep_fixed_intervals(self):
        # attempts are evenly spaced: total = (retries + 1) * per-attempt.
        costs = RpcCosts.revised()
        elapsed, client = elapsed_until_unavailable()
        assert client.retransmissions == costs.max_retries
        per_attempt = elapsed / (costs.max_retries + 1)
        # Every attempt waited the same base timeout (loss-free wire).
        assert per_attempt == pytest.approx(elapsed - costs.max_retries * per_attempt,
                                            rel=1e-9)

    def test_default_costs_draw_nothing_from_the_rng(self):
        # The backoff branch must not touch the random stream when it is
        # configured off, or pre-change runs would not replay.
        sim = Simulator()
        client, _server, _ch, server_host = build_pair(sim)

        def go():
            conn = yield from client.connect("server", "alice", ALICE_KEY)
            server_host.crash()
            state = client.rng._rng.getstate()
            try:
                yield from client.call(conn, "Ping", {})
            except ServerUnavailable:
                pass
            return state == client.rng._rng.getstate()

        assert sim.run_until_complete(sim.process(go()))

    def test_replay_is_byte_identical(self):
        first, _ = elapsed_until_unavailable()
        second, _ = elapsed_until_unavailable()
        assert first == second


class TestBackoff:
    def test_backoff_grows_the_intervals(self):
        base, _ = elapsed_until_unavailable()
        backed, _ = elapsed_until_unavailable(
            RpcCosts.revised().with_(retransmit_backoff=2.0)
        )
        # 4 attempts: fixed waits 4 units, doubling waits 1+2+4+8 = 15.
        assert backed / base == pytest.approx(15.0 / 4.0, rel=0.01)

    def test_jitter_is_seeded_and_deterministic(self):
        costs = RpcCosts.revised().with_(retransmit_backoff=2.0,
                                         retransmit_jitter=0.1)
        first, _ = elapsed_until_unavailable(costs)
        second, _ = elapsed_until_unavailable(costs)
        assert first == second
        unjittered, _ = elapsed_until_unavailable(
            RpcCosts.revised().with_(retransmit_backoff=2.0)
        )
        assert first != unjittered
        # Jitter perturbs each interval by at most +/-10%.
        assert abs(first - unjittered) / unjittered < 0.1

    def test_replicated_config_defaults_to_backoff(self):
        plain = rpc_costs_for(SystemConfig())
        assert plain.retransmit_backoff == 1.0
        assert plain.retransmit_jitter == 0.0
        replicated = rpc_costs_for(
            SystemConfig(replication=ReplicationConfig())
        )
        assert replicated.retransmit_backoff == 2.0
        assert replicated.retransmit_jitter == 0.1
        # An explicit override still wins.
        custom = RpcCosts.revised().with_(retransmit_backoff=3.0)
        assert rpc_costs_for(
            SystemConfig(replication=ReplicationConfig(), rpc_costs=custom)
        ) is custom


class TestMetrics:
    def test_retransmits_counted_by_destination(self):
        _elapsed, client = elapsed_until_unavailable()
        assert client.retransmits.count("server") == client.retransmissions
        assert client.retransmits.count("elsewhere") == 0

    def test_retransmit_counter_registered(self):
        sim = Simulator()
        client, _server, _ch, _sh = build_pair(sim)
        assert "rpc.client.retransmits" in sim.metrics.names("rpc.client.")
