"""Tests for RPC internals: envelopes, reply cache, BUSY flow, messages."""

import pytest

from repro.crypto import derive_user_key
from repro.errors import FileNotFound, NotCustodian, ReproError
from repro.rpc import marshal
from repro.rpc.messages import (
    Envelope,
    Kind,
    decode_error,
    encode_error,
    maybe_raise,
)
from repro.rpc.node import _REPLY_CACHE_LIMIT
from tests.helpers import alice_session, run, small_campus


class TestEnvelope:
    def test_wire_bytes_counts_all_parts(self):
        envelope = Envelope(Kind.CALL, "c1", 3, body=b"12345", payload=b"abc",
                            username="u", note="n")
        assert envelope.wire_bytes(100) == 100 + 5 + 3 + 1 + 1

    def test_empty_envelope_costs_overhead_only(self):
        envelope = Envelope(Kind.HS_OK, "c1")
        assert envelope.wire_bytes(96) == 96


class TestErrorTransport:
    def test_roundtrip_standard_error(self):
        record = encode_error(FileNotFound("/x"))
        error = decode_error(record)
        assert isinstance(error, FileNotFound)
        assert "/x" in str(error)

    def test_roundtrip_not_custodian_hint(self):
        record = encode_error(NotCustodian("server5"))
        error = decode_error(record)
        assert isinstance(error, NotCustodian)
        assert error.custodian_hint == "server5"

    def test_unknown_error_class_degrades_gracefully(self):
        error = decode_error({"__error__": "TotallyMadeUp", "message": "m"})
        assert isinstance(error, ReproError)

    def test_maybe_raise_passthrough(self):
        assert maybe_raise({"value": 42}) == {"value": 42}
        assert maybe_raise([1, 2]) == [1, 2]
        assert maybe_raise(None) is None

    def test_maybe_raise_raises(self):
        with pytest.raises(FileNotFound):
            maybe_raise(encode_error(FileNotFound("gone")))

    def test_error_record_is_marshalable(self):
        record = encode_error(NotCustodian("server1"))
        assert marshal.loads(marshal.dumps(record)) == record


class TestReplyCache:
    def test_reply_cache_bounded(self):
        campus = small_campus()
        session = alice_session(campus)
        home = "/vice/usr/alice"
        run(campus, session.write_file(f"{home}/f", b"x"))
        # Push far more calls than the cache limit through one connection.
        for index in range(_REPLY_CACHE_LIMIT + 40):
            run(campus, session.stat(f"{home}/f"))
            campus.workstation(0).venus.cache.invalidate_all()
        server = campus.server(0)
        for cache in server.node._reply_cache.values():
            assert len(cache) <= _REPLY_CACHE_LIMIT + 1

    def test_connection_close_drops_reply_cache(self):
        campus = small_campus()
        session = alice_session(campus)
        run(campus, session.write_file("/vice/usr/alice/f", b"x"))
        venus = campus.workstation(0).venus
        conn = next(iter(venus._connections.values()))
        venus.node.close_connection(conn)
        assert conn.connection_id not in venus.node._reply_cache


class TestCountersAndIntrospection:
    def test_handshakes_counted_both_sides(self):
        campus = small_campus()
        session = alice_session(campus)
        run(campus, session.write_file("/vice/usr/alice/f", b"x"))
        client_node = campus.workstation(0).venus.node
        server_node = campus.server(0).node
        assert client_node.handshakes_completed == 1
        assert server_node.handshakes_completed == 1

    def test_active_connections_property(self):
        campus = small_campus()
        session = alice_session(campus)
        run(campus, session.write_file("/vice/usr/alice/f", b"x"))
        assert campus.workstation(0).venus.node.active_connections == 1

    def test_invalid_transport_and_mode_rejected(self):
        campus = small_campus()
        host = campus.workstation(0).host
        from repro.rpc.node import RpcNode

        with pytest.raises(ValueError):
            RpcNode.__new__(RpcNode).__init__(host, transport="carrier-pigeon")
        with pytest.raises(ValueError):
            RpcNode.__new__(RpcNode).__init__(host, server_mode="threads")


class TestKeyIsolation:
    def test_sessions_for_same_user_have_distinct_keys(self):
        """Every connection derives a fresh session key (per-session keys
        'reduce the risk of exposure of authentication keys', §3.4)."""
        campus = small_campus(workstations_per_cluster=2)
        a = alice_session(campus, 0)
        b = alice_session(campus, 1)
        run(campus, a.write_file("/vice/usr/alice/f", b"x"))
        run(campus, b.read_file("/vice/usr/alice/f"))
        keys = {
            conn.session_key
            for conn in campus.server(0).node.connections.values()
            if conn.username == "alice"
        }
        assert len(keys) == 2

    def test_session_key_never_equals_user_key(self):
        campus = small_campus()
        session = alice_session(campus)
        run(campus, session.write_file("/vice/usr/alice/f", b"x"))
        user_key = derive_user_key("alice", "alice-pw")
        for conn in campus.server(0).node.connections.values():
            assert conn.session_key != user_key
