"""Tests for volume salvage after a server crash (§5.3)."""

import pytest

from repro.errors import InvalidArgument, ServerUnavailable
from repro.rpc.costs import RpcCosts
from repro.vice.volume import Volume
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"


def build_volume():
    volume = Volume("v", "salvage-me", owner="alice")
    volume.mkdir("/d", owner="alice")
    volume.create_file("/d/f", b"12345", owner="alice")
    volume.create_file("/top", b"abc", owner="alice")
    return volume


class TestVolumeSalvage:
    def test_clean_volume_reports_zeros(self):
        volume = build_volume()
        volume.take_offline()
        report = volume.salvage()
        assert all(count == 0 for count in report.values())

    def test_requires_offline(self):
        volume = build_volume()
        with pytest.raises(InvalidArgument):
            volume.salvage()

    def test_rebuilds_corrupted_index(self):
        volume = build_volume()
        node = volume.resolve("/d/f")
        # Simulated crash damage: a dangling index entry and a lost one.
        volume._inodes[99999] = node
        del volume._inodes[node.number]
        volume.take_offline()
        report = volume.salvage()
        assert report["dangling_index_entries"] == 1
        assert report["missing_index_entries"] == 1
        volume.bring_online()
        assert volume.inode_by_vnode(node.number).data == b"12345"

    def test_repairs_byte_accounting(self):
        volume = build_volume()
        volume.used_bytes = 10**6  # corrupted by the crash
        volume.take_offline()
        report = volume.salvage()
        assert report["byte_accounting_drift"] > 0
        assert volume.used_bytes == 8  # 5 + 3 actual bytes

    def test_reinherits_missing_acl(self):
        volume = build_volume()
        d = volume.resolve("/d")
        volume.acls[volume.fs.root.number].grant("howard", "rl")
        del volume.acls[d.number]
        volume.take_offline()
        report = volume.salvage()
        assert report["missing_acls"] == 1
        assert volume.acls[d.number].positive["howard"] == frozenset("rl")

    def test_repairs_parent_links(self):
        volume = build_volume()
        node = volume.resolve("/d/f")
        volume._parents[node.number] = volume.fs.root.number  # wrong
        volume.take_offline()
        report = volume.salvage()
        assert report["wrong_parent_links"] == 1
        assert volume.path_of(node.number) == "/d/f"

    def test_salvage_preserves_data(self):
        volume = build_volume()
        volume.take_offline()
        volume.salvage()
        volume.bring_online()
        assert volume.read("/d/f") == b"12345"
        assert volume.read("/top") == b"abc"


class TestServerSalvage:
    def test_crash_salvage_recover_cycle(self):
        campus = small_campus(rpc_costs=RpcCosts(retransmit_timeout=0.5, max_retries=1))
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"before crash"))
        server = campus.server(0)

        server.host.crash()
        campus.workstation(0).venus.invalidate_all()
        with pytest.raises(ServerUnavailable):
            run(campus, session.read_file(f"{HOME}/f"))

        # Operator reboots the machine and salvages before opening service.
        server.host.recover()
        reports = run(campus, server.salvage_all())
        assert "u-alice" in reports
        assert all(v == 0 for v in reports["u-alice"].values())  # clean crash
        assert server.callbacks.state_size == 0  # promises did not survive

        assert run(campus, session.read_file(f"{HOME}/f")) == b"before crash"

    def test_salvage_repairs_damage_under_protocol(self):
        campus = small_campus()
        session = alice_session(campus, 0)
        run(campus, session.write_file(f"{HOME}/f", b"data"))
        server = campus.server(0)
        volume = server.volumes["u-alice"]
        volume.used_bytes += 12345  # crash-induced drift
        server.host.crash()
        server.host.recover()
        reports = run(campus, server.salvage_all())
        assert reports["u-alice"]["byte_accounting_drift"] == 12345
        assert volume.used_bytes == 4

    def test_salvage_covers_every_volume(self):
        campus = small_campus()
        campus.create_volume("/extra", custodian=0, volume_id="extra")
        server = campus.server(0)
        reports = run(campus, server.salvage_all())
        assert set(reports) >= {"root", "u-alice", "extra"}
