"""Tests for repro.sim.shard: planning, fallbacks, parity, lookahead audit.

The contract under test is the one docs/performance.md states: sharding
is a pure wall-clock knob.  Every supported configuration must produce a
``run_campus_day`` summary byte-identical to the single-process driver's,
and every unsupported configuration must degrade to that driver with a
warning — never crash, never silently change results.
"""

import os
import subprocess
import sys
import warnings

import pytest

from repro import ITCSystem, SystemConfig
from repro.faults.plan import clean_plan
from repro.sim.shard import ShardConfig, plan_shards, run_sharded_campus_day
from repro.vice.replication import ReplicationConfig
from repro.workload import provision_campus, run_campus_day

_BENCHMARKS = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                           "benchmarks")


def small_sharded_campus(clusters=3, workstations_per_cluster=4, sharding=None,
                         **overrides):
    """A multi-cluster campus provisioned like the campus benches."""
    config = SystemConfig(
        mode="revised",
        clusters=clusters,
        workstations_per_cluster=workstations_per_cluster,
        functional_payload_crypto=False,
        cache_max_files=120,
        sharding=sharding,
        **overrides,
    )
    campus = ITCSystem(config)
    with campus.batch_setup():
        users = provision_campus(campus, hot_files=6, cold_files=8,
                                 shared_files=10, binary_files=4)
    return campus, users


DAY = dict(duration=300.0, warmup=60.0)


# ----------------------------------------------------------------------
# planning and lookahead math
# ----------------------------------------------------------------------

class TestPlanShards:
    def test_round_robin_assignment_and_hub_ownership(self):
        campus, _users = small_sharded_campus(clusters=5)
        plan, reason = plan_shards(campus.config, campus.network,
                                   ShardConfig(workers=2))
        assert reason is None
        assert plan.assignment == (0, 1, 0, 1, 0)
        assert plan.hub == 0
        assert "backbone" in plan.owned_segments[0]
        assert plan.owned_segments[0] >= {"cluster0", "cluster2", "cluster4"}
        assert plan.owned_segments[1] == {"cluster1", "cluster3"}

    def test_lookahead_spokes_own_bridges_hub_spoke_bridges(self):
        campus, _users = small_sharded_campus(clusters=4)
        network = campus.network
        # Give each cluster's bridge a distinct delay so the mins are
        # attributable: cluster i -> 1ms * (i + 1).
        for bridge in network.bridges:
            names = {bridge.side_a.name, bridge.side_b.name}
            cluster = int((names - {"backbone"}).pop().removeprefix("cluster"))
            bridge.forwarding_delay = 0.001 * (cluster + 1)
        plan, reason = plan_shards(campus.config, network, ShardConfig(workers=2))
        assert reason is None
        # Shard 1 (spoke) owns clusters 1 and 3: arrivals cross its own
        # bridges -> min(2ms, 4ms).
        assert plan.lookahead[1] == pytest.approx(0.002)
        # Shard 0 (hub) receives across the *senders'* bridges — the
        # spoke-owned clusters 1 and 3 — not its own clusters 0 and 2.
        assert plan.lookahead[0] == pytest.approx(0.002)

    def test_workers_clamped_to_cluster_count(self):
        campus, _users = small_sharded_campus(clusters=2)
        plan, reason = plan_shards(campus.config, campus.network,
                                   ShardConfig(workers=8))
        assert reason is None
        assert plan.workers == 2

    def test_explicit_assignment(self):
        campus, _users = small_sharded_campus(clusters=3)
        plan, reason = plan_shards(campus.config, campus.network,
                                   ShardConfig(workers=2, assignment=(0, 0, 1)))
        assert reason is None
        assert plan.clusters_of(0) == [0, 1]
        assert plan.clusters_of(1) == [2]


class TestPlanFallbacks:
    def _reason(self, campus, sharding=ShardConfig(workers=2)):
        plan, reason = plan_shards(campus.config, campus.network, sharding)
        assert plan is None
        return reason

    def test_single_cluster(self):
        campus, _users = small_sharded_campus(clusters=1)
        assert "single-cluster" in self._reason(campus)

    def test_zero_lookahead_bridge(self):
        campus, _users = small_sharded_campus()
        campus.network.bridges[0].forwarding_delay = 0.0
        assert "zero lookahead" in self._reason(campus)

    def test_replication(self):
        campus, _users = small_sharded_campus(
            replication=ReplicationConfig(factor=2))
        assert "replication" in self._reason(campus)

    def test_fault_plan(self):
        campus, _users = small_sharded_campus(fault_plan=clean_plan())
        assert "fault plans" in self._reason(campus)

    def test_deferred_write_policy(self):
        campus, _users = small_sharded_campus(write_policy="deferred")
        assert "write policy" in self._reason(campus)

    def test_invalid_explicit_assignment(self):
        campus, _users = small_sharded_campus(clusters=3)
        assert "invalid" in self._reason(
            campus, ShardConfig(workers=2, assignment=(0, 0)))

    def test_assignment_leaving_a_worker_empty(self):
        campus, _users = small_sharded_campus(clusters=3)
        assert "empty" in self._reason(
            campus, ShardConfig(workers=2, assignment=(0, 0, 0)))

    def test_zero_workers(self):
        campus, _users = small_sharded_campus()
        assert "workers" in self._reason(campus, ShardConfig(workers=0))

    def test_unconfigured(self):
        campus, _users = small_sharded_campus()
        plan, reason = plan_shards(campus.config, campus.network, None)
        assert plan is None
        assert "not configured" in reason


# ----------------------------------------------------------------------
# lazy import: an unsharded run must never load the module
# ----------------------------------------------------------------------

def test_unsharded_runs_never_import_shard_module():
    code = (
        "import sys\n"
        "import repro.system.config, repro.system.itc, repro.workload\n"
        "from repro import ITCSystem, SystemConfig\n"
        "campus = ITCSystem(SystemConfig(clusters=1,"
        " workstations_per_cluster=1))\n"
        "assert 'repro.sim.shard' not in sys.modules, 'shard module leaked'\n"
    )
    src = os.path.join(os.path.dirname(_BENCHMARKS), "src")
    env = dict(os.environ, PYTHONPATH=src)
    result = subprocess.run([sys.executable, "-c", code], env=env,
                            capture_output=True, text=True)
    assert result.returncode == 0, result.stderr


# ----------------------------------------------------------------------
# parity: sharded summaries are byte-identical to the single process
# ----------------------------------------------------------------------

class TestParity:
    @pytest.fixture(scope="class")
    def reference(self):
        campus, users = small_sharded_campus()
        return run_campus_day(campus, users, **DAY)

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_byte_identical_summary(self, reference, workers):
        campus, users = small_sharded_campus(
            sharding=ShardConfig(workers=workers))
        summary = run_campus_day(campus, users, **DAY)
        assert summary == reference

    def test_explicit_assignment_parity(self, reference):
        campus, users = small_sharded_campus(
            sharding=ShardConfig(workers=2, assignment=(1, 0, 0)))
        summary = run_campus_day(campus, users, **DAY)
        assert summary == reference


def test_campus_200_determinism_regression():
    """The acceptance shape: 200 workstations, bench_campus provisioning.

    Byte-identical summaries across unsharded, workers=1 and workers=4
    with the same seed — the guard against any drift in handoff timing,
    injection order or merge arithmetic at the real campus scale.
    """
    if _BENCHMARKS not in sys.path:
        sys.path.insert(0, _BENCHMARKS)
    from bench_campus import build_campus

    day = dict(duration=40.0, warmup=20.0)
    shape = dict(clusters=4, workstations_per_cluster=50,
                 projects_per_dept=25, projects_per_user=3)

    campus, users = build_campus(**shape)
    reference = run_campus_day(campus, users, **day)
    for workers in (1, 4):
        campus, users = build_campus(sharding=ShardConfig(workers=workers),
                                     **shape)
        assert run_campus_day(campus, users, **day) == reference


# ----------------------------------------------------------------------
# lookahead audit and engine stats
# ----------------------------------------------------------------------

def test_lookahead_audit_clean_and_handoffs_flow():
    campus, users = small_sharded_campus(
        sharding=ShardConfig(workers=3, audit=True))
    stats = []
    run_sharded_campus_day(campus, users, stats_sink=stats, **DAY)
    assert len(stats) == 3
    assert sum(s["handoffs_out"] for s in stats) > 0
    # Hub forwards spoke->spoke traffic: in == out across the star.
    assert (sum(s["handoffs_out"] for s in stats)
            == sum(s["handoffs_in"] for s in stats))
    for s in stats:
        # No shard ever executed an event below an already-executed
        # window bound — the conservative-lookahead soundness invariant.
        assert s["lookahead_violations"] == 0
        assert s["windows"] > 0
    # Lockstep windows: every worker ran the same number of rounds.
    assert len({s["windows"] for s in stats}) == 1


# ----------------------------------------------------------------------
# runtime fallback behavior
# ----------------------------------------------------------------------

class TestRuntimeFallback:
    def test_unsupported_config_warns_registers_gauge_and_matches(self):
        campus, users = small_sharded_campus(fault_plan=clean_plan(),
                                             sharding=ShardConfig(workers=2))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            summary = run_campus_day(campus, users, **DAY)
        assert any("sharding disabled" in str(w.message) for w in caught
                   if issubclass(w.category, RuntimeWarning))
        assert "fault plans" in campus.metrics.value("sim.shard.fallback")["value"]

        reference_campus, reference_users = small_sharded_campus(
            fault_plan=clean_plan())
        reference = run_campus_day(reference_campus, reference_users, **DAY)
        assert summary == reference

    def test_single_cluster_degrades_transparently(self):
        campus, users = small_sharded_campus(clusters=1,
                                             sharding=ShardConfig(workers=2))
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            summary = run_campus_day(campus, users, **DAY)
        assert any("single-cluster" in str(w.message) for w in caught)
        assert "single-cluster" in campus.metrics.value("sim.shard.fallback")["value"]
        assert summary["failures"] == 0

    def test_zero_lookahead_degrades_transparently(self):
        campus, users = small_sharded_campus(sharding=ShardConfig(workers=2))
        for bridge in campus.network.bridges:
            bridge.forwarding_delay = 0.0
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            summary = run_campus_day(campus, users, **DAY)
        assert any("zero lookahead" in str(w.message) for w in caught)
        assert summary["actions"] > 0
