"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import Interrupt, SimulationError
from repro.sim import Simulator


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return sim.now

    result = sim.run_until_complete(sim.process(proc()))
    assert result == 5.0
    assert sim.now == 5.0


def test_timeouts_fire_in_order():
    sim = Simulator()
    seen = []

    def waiter(delay, tag):
        yield sim.timeout(delay)
        seen.append((sim.now, tag))

    sim.process(waiter(3.0, "c"))
    sim.process(waiter(1.0, "a"))
    sim.process(waiter(2.0, "b"))
    sim.run()
    assert seen == [(1.0, "a"), (2.0, "b"), (3.0, "c")]


def test_equal_time_events_fifo():
    sim = Simulator()
    seen = []

    def tick(tag):
        yield sim.timeout(1.0)
        seen.append(tag)

    for tag in range(5):
        sim.process(tick(tag))
    sim.run()
    assert seen == [0, 1, 2, 3, 4]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_event_value_passes_through_yield():
    sim = Simulator()
    event = sim.event()

    def producer():
        yield sim.timeout(2.0)
        event.succeed("payload")

    def consumer():
        value = yield event
        return value

    sim.process(producer())
    result = sim.run_until_complete(sim.process(consumer()))
    assert result == "payload"


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    event = sim.event()

    def failer():
        yield sim.timeout(1.0)
        event.fail(ValueError("boom"))

    def waiter():
        try:
            yield event
        except ValueError as exc:
            return f"caught {exc}"

    sim.process(failer())
    result = sim.run_until_complete(sim.process(waiter()))
    assert result == "caught boom"


def test_unhandled_process_failure_surfaces_from_run():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1.0)
        raise RuntimeError("unexpected")

    sim.process(crasher())
    with pytest.raises(RuntimeError, match="unexpected"):
        sim.run()


def test_run_until_complete_raises_target_failure():
    sim = Simulator()

    def crasher():
        yield sim.timeout(1.0)
        raise RuntimeError("direct")

    with pytest.raises(RuntimeError, match="direct"):
        sim.run_until_complete(sim.process(crasher()))


def test_process_waits_on_subprocess():
    sim = Simulator()

    def child():
        yield sim.timeout(4.0)
        return 42

    def parent():
        value = yield sim.process(child())
        return value + 1

    assert sim.run_until_complete(sim.process(parent())) == 43


def test_process_is_alive_flag():
    sim = Simulator()

    def child():
        yield sim.timeout(10.0)

    proc = sim.process(child())
    assert proc.is_alive
    sim.run()
    assert not proc.is_alive


def test_yield_on_already_processed_event():
    sim = Simulator()
    event = sim.event()
    event.succeed("early")
    sim.run()

    def late_waiter():
        value = yield event
        return value

    assert sim.run_until_complete(sim.process(late_waiter())) == "early"


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def leg(delay):
        yield sim.timeout(delay)
        return delay

    def parent():
        legs = [sim.process(leg(d)) for d in (3.0, 1.0, 2.0)]
        yield sim.all_of(legs)
        return sim.now

    assert sim.run_until_complete(sim.process(parent())) == 3.0


def test_any_of_fires_on_first():
    sim = Simulator()

    def leg(delay):
        yield sim.timeout(delay)

    def parent():
        legs = [sim.process(leg(d)) for d in (3.0, 1.0, 2.0)]
        yield sim.any_of(legs)
        return sim.now

    assert sim.run_until_complete(sim.process(parent())) == 1.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def parent():
        yield sim.all_of([])
        return sim.now

    assert sim.run_until_complete(sim.process(parent())) == 0.0


def test_interrupt_raises_inside_process():
    sim = Simulator()
    outcome = {}

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            outcome["cause"] = exc.cause
        return "survived"

    def attacker(target):
        yield sim.timeout(2.0)
        target.interrupt("preempt")

    target = sim.process(victim())
    sim.process(attacker(target))
    assert sim.run_until_complete(target) == "survived"
    assert outcome["cause"] == "preempt"
    assert sim.now == 2.0


def test_interrupt_of_finished_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_run_with_until_stops_clock():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(10.0)

    sim.process(forever())
    sim.run(until=35.0)
    assert sim.now == 35.0


def test_run_until_complete_time_limit():
    sim = Simulator()

    def slow():
        yield sim.timeout(1000.0)

    with pytest.raises(SimulationError, match="time limit"):
        sim.run_until_complete(sim.process(slow()), limit=10.0)


def test_yield_non_event_rejected():
    sim = Simulator()

    def bad():
        yield 42

    with pytest.raises(SimulationError, match="non-event"):
        sim.run_until_complete(sim.process(bad()))


def test_cross_simulator_event_rejected():
    sim_a = Simulator()
    sim_b = Simulator()
    foreign = sim_b.event()

    def bad():
        yield foreign

    with pytest.raises(SimulationError, match="another simulator"):
        sim_a.run_until_complete(sim_a.process(bad()))


def test_process_return_value_none_by_default():
    sim = Simulator()

    def empty():
        yield sim.timeout(0.0)

    assert sim.run_until_complete(sim.process(empty())) is None


def test_multiple_orphan_failures_raise_first_and_note_rest():
    # Regression: step() used to pop the *last* orphaned failure and clear
    # the rest, silently dropping all but one.  The first must be raised,
    # with the others attached as notes rather than discarded.
    sim = Simulator()
    first, second = RuntimeError("alpha"), RuntimeError("beta")
    for exc in (first, second):
        event = sim.event()
        event._triggered = True
        event._exc = exc
        sim._orphan_failures.append(event)
    sim.timeout(0.0)  # something for step() to process
    with pytest.raises(RuntimeError) as info:
        sim.step()
    assert info.value is first
    assert "beta" in "".join(getattr(info.value, "__notes__", []))
    assert sim._orphan_failures == []


def test_two_simultaneously_failing_orphans_surface_in_turn():
    # Two processes crash at the same instant from the same failed event:
    # resuming the simulation after the first raise surfaces the second
    # failure too — neither is lost.
    sim = Simulator()
    trigger = sim.event()

    def waiter(tag):
        try:
            yield trigger
        except RuntimeError:
            raise RuntimeError(tag)

    def manager():
        yield sim.timeout(1.0)
        trigger.fail(RuntimeError("boom"))

    sim.process(waiter("alpha"))
    sim.process(waiter("beta"))
    sim.process(manager())
    with pytest.raises(RuntimeError, match="alpha"):
        sim.run()
    with pytest.raises(RuntimeError, match="beta"):
        sim.run()


def test_stale_interrupt_after_process_finished_is_ignored():
    # Two interrupts are scheduled before either is delivered; the first
    # delivery finishes the process, so the second reaches a finished
    # process.  The stale delivery must be dropped (and its failure
    # defused) instead of corrupting the process state.
    sim = Simulator()

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            return "stopped"

    proc = sim.process(victim())

    def manager():
        yield sim.timeout(1.0)
        proc.interrupt("one")
        proc.interrupt("two")

    sim.process(manager())
    assert sim.run_until_complete(proc) == "stopped"
    sim.run()  # the stale interrupt must drain without an orphaned failure


def test_abandoned_event_failure_after_interrupt_is_defused():
    # A process is interrupted away from an event that subsequently fails.
    # Nobody waits on that failure any more; it must not crash the run.
    sim = Simulator()
    doomed = sim.event()

    def waiter():
        try:
            yield doomed
        except Interrupt:
            yield sim.timeout(5.0)
        return "recovered"

    proc = sim.process(waiter())

    def manager():
        yield sim.timeout(1.0)
        proc.interrupt("change of plan")
        yield sim.timeout(1.0)
        doomed.fail(RuntimeError("boom"))

    sim.process(manager())
    assert sim.run_until_complete(proc) == "recovered"
    sim.run()  # the abandoned failure must not surface as an orphan
