"""Unit tests for the measurement instruments."""

import pytest

from repro.sim import Counter, Samples, Simulator, UtilizationTracker


class TestCounter:
    def test_counts_and_total(self):
        counter = Counter()
        counter.add("validate")
        counter.add("validate")
        counter.add("fetch")
        assert counter.count("validate") == 2
        assert counter.count("fetch") == 1
        assert counter.count("missing") == 0
        assert counter.total == 3

    def test_shares(self):
        counter = Counter()
        counter.add("a", 3)
        counter.add("b", 1)
        shares = counter.shares()
        assert shares["a"] == pytest.approx(0.75)
        assert shares["b"] == pytest.approx(0.25)

    def test_shares_empty(self):
        assert Counter().shares() == {}

    def test_as_dict_snapshot_is_independent(self):
        counter = Counter()
        counter.add("x")
        snapshot = counter.as_dict()
        snapshot["x"] = 99
        assert counter.count("x") == 1


class TestSamples:
    def test_mean_and_extremes(self):
        samples = Samples()
        for value in (1.0, 2.0, 3.0, 10.0):
            samples.add(value)
        assert samples.mean == pytest.approx(4.0)
        assert samples.maximum == 10.0
        assert samples.minimum == 1.0
        assert samples.total == 16.0
        assert len(samples) == 4

    def test_empty_statistics_are_zero(self):
        samples = Samples()
        assert samples.mean == 0.0
        assert samples.maximum == 0.0
        assert samples.percentile(0.5) == 0.0
        assert samples.stddev == 0.0

    def test_percentile_nearest_rank(self):
        samples = Samples()
        for value in range(1, 101):
            samples.add(float(value))
        assert samples.percentile(0.5) == 50.0
        assert samples.percentile(0.99) == 99.0
        assert samples.percentile(1.0) == 100.0

    def test_stddev(self):
        samples = Samples()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            samples.add(value)
        assert samples.stddev == pytest.approx(2.0)

    def test_values_returns_copy(self):
        samples = Samples()
        samples.add(1.0)
        samples.values.append(99.0)
        assert len(samples) == 1


class TestUtilizationTracker:
    def test_mean_utilization_half_busy(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim, capacity=1, window=10.0)
        tracker.record(1)
        sim.run(until=50.0)
        tracker.record(0)
        sim.run(until=100.0)
        assert tracker.mean_utilization(0.0, 100.0) == pytest.approx(0.5)

    def test_windowed_peak(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim, capacity=1, window=10.0)
        sim.run(until=20.0)
        tracker.record(1)  # busy 20..25
        sim.run(until=25.0)
        tracker.record(0)
        sim.run(until=100.0)
        series = dict(tracker.window_series())
        assert series[20.0] == pytest.approx(0.5)
        assert tracker.peak_utilization() == pytest.approx(0.5)
        # Long-run mean is much lower than the peak window.
        assert tracker.mean_utilization(0.0, 100.0) == pytest.approx(0.05)

    def test_capacity_scaling(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim, capacity=2, window=10.0)
        tracker.record(1)  # half of capacity 2
        sim.run(until=10.0)
        tracker.record(0)
        assert tracker.mean_utilization(0.0, 10.0) == pytest.approx(0.5)

    def test_window_boundary_spanning(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim, capacity=1, window=10.0)
        sim.run(until=5.0)
        tracker.record(1)  # busy 5..15: split across two windows
        sim.run(until=15.0)
        tracker.record(0)
        series = dict(tracker.window_series())
        assert series[0.0] == pytest.approx(0.5)
        assert series[10.0] == pytest.approx(0.5)

    def test_windowed_mean_excluding_warmup(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim, capacity=1, window=10.0)
        tracker.record(1)  # busy the whole first 50 s (warm-up)
        sim.run(until=50.0)
        tracker.record(0)
        sim.run(until=100.0)
        assert tracker.mean_utilization(50.0, 100.0) == pytest.approx(0.0)
        assert tracker.mean_utilization(0.0, 50.0) == pytest.approx(1.0)

    def test_empty_tracker(self):
        sim = Simulator()
        tracker = UtilizationTracker(sim)
        assert tracker.mean_utilization() == 0.0
        assert tracker.peak_utilization() == 0.0
        assert tracker.window_series() == []
