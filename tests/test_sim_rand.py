"""Unit tests for the seeded workload random source."""

import pytest

from repro.sim.rand import WorkloadRandom


def test_same_seed_same_stream():
    a = WorkloadRandom(42)
    b = WorkloadRandom(42)
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_seeds_differ():
    a = WorkloadRandom(1)
    b = WorkloadRandom(2)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_fork_is_deterministic_and_independent():
    parent_a = WorkloadRandom(7)
    parent_b = WorkloadRandom(7)
    fork_a = parent_a.fork(3)
    fork_b = parent_b.fork(3)
    assert [fork_a.random() for _ in range(5)] == [fork_b.random() for _ in range(5)]
    other = parent_a.fork(4)
    assert fork_a.random() != other.random() or fork_a.random() != other.random()


def test_exponential_mean_converges():
    rng = WorkloadRandom(9)
    samples = [rng.exponential(10.0) for _ in range(20_000)]
    assert sum(samples) / len(samples) == pytest.approx(10.0, rel=0.05)


def test_exponential_zero_mean():
    assert WorkloadRandom(0).exponential(0.0) == 0.0


def test_lognormal_size_respects_cap_and_floor():
    rng = WorkloadRandom(5)
    sizes = [rng.lognormal_size(4000, 1.5, cap=10_000) for _ in range(2000)]
    assert all(1 <= size <= 10_000 for size in sizes)


def test_lognormal_median_roughly_matches():
    rng = WorkloadRandom(6)
    sizes = sorted(rng.lognormal_size(4000, 0.9, cap=10**9) for _ in range(20_000))
    median = sizes[len(sizes) // 2]
    assert median == pytest.approx(4000, rel=0.1)


def test_zipf_index_bounds():
    rng = WorkloadRandom(11)
    for n in (1, 2, 10, 100):
        for _ in range(200):
            assert 0 <= rng.zipf_index(n) < n


def test_zipf_concentrates_on_low_indices():
    rng = WorkloadRandom(12)
    draws = [rng.zipf_index(100, 1.2) for _ in range(10_000)]
    top_ten = sum(1 for draw in draws if draw < 10) / len(draws)
    assert top_ten > 0.5


def test_zipf_rejects_empty():
    with pytest.raises(ValueError):
        WorkloadRandom(0).zipf_index(0)


def test_chance_extremes():
    rng = WorkloadRandom(13)
    assert not any(rng.chance(0.0) for _ in range(100))
    assert all(rng.chance(1.0) for _ in range(100))


def test_choice_and_sample():
    rng = WorkloadRandom(14)
    items = list(range(50))
    assert rng.choice(items) in items
    picked = rng.sample(items, 5)
    assert len(set(picked)) == 5
    assert all(p in items for p in picked)


def test_shuffle_is_permutation():
    rng = WorkloadRandom(15)
    items = list(range(30))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items


def test_weighted_choice_respects_weights():
    rng = WorkloadRandom(16)
    draws = [rng.weighted_choice(["a", "b"], [0.9, 0.1]) for _ in range(5000)]
    assert draws.count("a") > 4000


def test_bounded_pareto_in_bounds():
    rng = WorkloadRandom(17)
    for _ in range(1000):
        value = rng.bounded_pareto(1.0, 100.0)
        assert 0.9 <= value <= 101.0
