"""Unit tests for Resource and Store."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_grants_immediately_when_free(self, sim):
        resource = Resource(sim, capacity=1)

        def proc():
            request = resource.request()
            yield request
            granted_at = sim.now
            resource.release(request)
            return granted_at

        assert sim.run_until_complete(sim.process(proc())) == 0.0

    def test_serializes_contending_users(self, sim):
        resource = Resource(sim, capacity=1)
        finish_times = []

        def worker(tag):
            yield from resource.use(10.0)
            finish_times.append((tag, sim.now))

        for tag in ("a", "b", "c"):
            sim.process(worker(tag))
        sim.run()
        assert finish_times == [("a", 10.0), ("b", 20.0), ("c", 30.0)]

    def test_capacity_two_runs_pairs_concurrently(self, sim):
        resource = Resource(sim, capacity=2)
        finish_times = []

        def worker():
            yield from resource.use(10.0)
            finish_times.append(sim.now)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert finish_times == [10.0, 10.0, 20.0, 20.0]

    def test_fifo_ordering(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def worker(tag, arrive):
            yield sim.timeout(arrive)
            yield from resource.use(5.0)
            order.append(tag)

        sim.process(worker("late", 2.0))
        sim.process(worker("early", 1.0))
        sim.run()
        assert order == ["early", "late"]

    def test_in_use_and_queue_length(self, sim):
        resource = Resource(sim, capacity=1)
        observed = {}

        def holder():
            request = resource.request()
            yield request
            yield sim.timeout(5.0)
            observed["in_use"] = resource.in_use
            observed["queued"] = resource.queue_length
            resource.release(request)

        def waiter():
            yield sim.timeout(1.0)
            yield from resource.use(1.0)

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert observed == {"in_use": 1, "queued": 1}

    def test_release_of_unknown_request_rejected(self, sim):
        resource = Resource(sim, capacity=1)
        other = Resource(sim, capacity=1)
        request = other.request()
        sim.run()
        with pytest.raises(SimulationError):
            resource.release(request)

    def test_withdraw_queued_request(self, sim):
        resource = Resource(sim, capacity=1)
        held = resource.request()
        queued = resource.request()
        resource.release(queued)  # withdraw before grant
        resource.release(held)
        sim.run()
        assert resource.in_use == 0
        assert resource.queue_length == 0

    def test_utilization_tracks_busy_time(self, sim):
        resource = Resource(sim, capacity=1)

        def worker():
            yield from resource.use(25.0)
            yield sim.timeout(75.0)

        sim.process(worker())
        sim.run()
        assert resource.utilization.mean_utilization(0.0, 100.0) == pytest.approx(0.25)

    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_total_requests_counted(self, sim):
        resource = Resource(sim, capacity=1)

        def worker():
            yield from resource.use(1.0)

        for _ in range(3):
            sim.process(worker())
        sim.run()
        assert resource.total_requests == 3

    def test_use_releases_on_interrupt(self, sim):
        resource = Resource(sim, capacity=1)

        def victim():
            yield from resource.use(100.0)

        def second():
            yield from resource.use(1.0)
            return sim.now

        proc = sim.process(victim())

        def attacker():
            yield sim.timeout(5.0)
            proc.interrupt()

        sim.process(attacker())
        follower = sim.process(second())
        proc.defuse()
        assert sim.run_until_complete(follower) == 6.0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")

        def consumer():
            value = yield store.get()
            return value

        assert sim.run_until_complete(sim.process(consumer())) == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def consumer():
            value = yield store.get()
            return (value, sim.now)

        def producer():
            yield sim.timeout(7.0)
            store.put(42)

        sim.process(producer())
        assert sim.run_until_complete(sim.process(consumer())) == (42, 7.0)

    def test_fifo_order(self, sim):
        store = Store(sim)
        received = []

        def consumer():
            for _ in range(3):
                value = yield store.get()
                received.append(value)

        sim.process(consumer())
        for value in (1, 2, 3):
            store.put(value)
        sim.run()
        assert received == [1, 2, 3]

    def test_multiple_waiters_served_in_order(self, sim):
        store = Store(sim)
        received = []

        def consumer(tag):
            value = yield store.get()
            received.append((tag, value))

        sim.process(consumer("first"))
        sim.process(consumer("second"))
        sim.run()
        store.put("a")
        store.put("b")
        sim.run()
        assert received == [("first", "a"), ("second", "b")]

    def test_len_counts_queued_items(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.total_put == 2
