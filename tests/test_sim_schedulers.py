"""Scheduler equivalence and calendar-queue behavior.

The kernel's event queue is pluggable (``heap`` — the reference binary
heap — and ``calendar`` — the bucketed time wheel).  Everything virtual
must be byte-identical across the two: these tests pin that equivalence
at the raw-queue level, on randomized kernel workloads, and on a
1,000-workstation campus, plus the calendar-specific machinery (overflow
heap, resizing, dead-event compaction) and the ``run(until=)`` horizon
contract.
"""

import random

import pytest

from repro.sim.kernel import Simulator
from repro.sim.schedulers import (
    CalendarQueue,
    HeapScheduler,
    make_scheduler,
    SCHEDULERS,
)

BOTH = sorted(SCHEDULERS)


# ----------------------------------------------------------------------
# raw queue equivalence
# ----------------------------------------------------------------------

class _Stub:
    """Minimal event stand-in: schedulers only read ``_cancelled``."""

    __slots__ = ("_cancelled", "tag")

    def __init__(self, tag):
        self._cancelled = False
        self.tag = tag


def _drain(queue):
    order = []
    while True:
        out = []
        entry = queue.pop_due(None, out)
        if entry is None:
            break
        order.append(entry[2].tag)
        order.extend(e.tag for e in out)
    return order


@pytest.mark.parametrize("seed", range(8))
def test_random_push_pop_orders_identical(seed):
    """Any push mix drains from both queues in the same (time, seq) order."""
    rng = random.Random(seed)
    heap, calendar = HeapScheduler(), CalendarQueue()
    seq = 0
    now = 0.0
    for _ in range(400):
        # A mix of near cohorts, spread timers and far-future outliers.
        kind = rng.random()
        if kind < 0.4:
            when = now + rng.choice([0.001, 0.002, 0.005])
        elif kind < 0.8:
            when = now + rng.uniform(0.001, 5.0)
        else:
            when = now + rng.uniform(100.0, 5000.0)
        seq += 1
        stub = _Stub(seq)
        heap.push(when, seq, stub)
        calendar.push(when, seq, stub)
    assert _drain(heap) == _drain(calendar)
    assert len(heap) == 0 and len(calendar) == 0


def test_cohort_drains_in_sequence_order():
    for name in BOTH:
        queue = make_scheduler(name)
        stubs = [_Stub(i) for i in range(10)]
        for i, stub in enumerate(stubs):
            queue.push(5.0, i, stub)
        queue.push(7.0, 10, _Stub(10))
        out = []
        entry = queue.pop_due(None, out)
        assert entry[2].tag == 0
        assert [e.tag for e in out] == list(range(1, 10))
        assert len(queue) == 1, name


def test_pop_due_leaves_future_entry_queued():
    for name in BOTH:
        queue = make_scheduler(name)
        queue.push(10.0, 1, _Stub(1))
        out = []
        assert queue.pop_due(5.0, out) is None
        assert out == []
        assert len(queue) == 1
        entry = queue.pop_due(None, out)
        assert entry[0] == 10.0 and entry[2].tag == 1, name


def test_calendar_overflow_and_resize_preserve_order():
    """Far-future entries ride the overflow heap and still drain in order."""
    queue = CalendarQueue(width=0.001)  # tiny width forces overflow traffic
    whens = [(i * 37 % 500) * 1.0 + 0.5 for i in range(500)]
    for seq, when in enumerate(whens):
        queue.push(when, seq, _Stub(seq))
    assert queue.stats()["overflow"] > 0
    drained = []
    while True:
        out = []
        entry = queue.pop_due(None, out)
        if entry is None:
            break
        drained.append((entry[0], entry[1]))
        drained.extend((entry[0], e) for e in ())  # cohorts exercised above
    assert drained == sorted(drained)
    assert len(drained) == 500
    assert queue.stats()["overflow"] == 0  # fully migrated and drained


def test_calendar_wheel_grows_with_near_population():
    queue = CalendarQueue(width=1.0)
    for seq in range(300):
        # All near-term (evb 0-3): lands in the wheel, outgrows 32 slots.
        queue.push(0.5 + seq * 0.01, seq, _Stub(seq))
    stats = queue.stats()
    assert stats["resizes"] > 0
    assert stats["buckets"] > CalendarQueue.MIN_BUCKETS
    assert _drain(queue) == list(range(300))


def test_make_scheduler_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown scheduler"):
        make_scheduler("fifo")


# ----------------------------------------------------------------------
# randomized kernel-level equivalence
# ----------------------------------------------------------------------

def _random_workload(sim, seed, log):
    """A process mix: sleeps, same-instant cascades, cancelled guards."""
    rng = random.Random(seed)

    def sleeper(tag, rounds):
        for i in range(rounds):
            delay = rng.choice([0.0, 0.001, 0.25, 1.5, 30.0])
            guard = sim.timeout(60.0)
            yield sim.timeout(delay)
            guard.cancel()
            log.append((round(sim.now, 9), tag, i))

    def spawner(tag):
        yield sim.timeout(0.5)
        for child in range(3):
            sim.process(sleeper((tag, child), 4))
        log.append((round(sim.now, 9), tag, "spawned"))

    for tag in range(10):
        sim.process(sleeper(tag, 6))
    for tag in range(3):
        sim.process(spawner(("spawn", tag)))


@pytest.mark.parametrize("seed", range(5))
def test_kernel_workload_identical_across_schedulers(seed):
    logs = {}
    finals = {}
    for name in BOTH:
        sim = Simulator(scheduler=name)
        log = []
        _random_workload(sim, seed, log)
        sim.run()
        logs[name] = log
        finals[name] = (sim.now, sim._sequence)
    assert logs["calendar"] == logs["heap"]
    assert finals["calendar"] == finals["heap"]


def test_run_until_complete_identical_across_schedulers():
    results = {}
    for name in BOTH:
        sim = Simulator(scheduler=name)

        def work():
            total = 0.0
            for i in range(20):
                yield sim.timeout(0.1 * (i % 5))
                total += sim.now
            return total

        results[name] = (sim.run_until_complete(sim.process(work())), sim.now)
    assert results["calendar"] == results["heap"]


# ----------------------------------------------------------------------
# run(until=) horizon contract
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", BOTH)
def test_event_exactly_at_horizon_fires(scheduler):
    sim = Simulator(scheduler=scheduler)
    fired = []

    def proc():
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(proc())
    sim.run(until=10.0)
    assert fired == [10.0]
    assert sim.now == 10.0


@pytest.mark.parametrize("scheduler", BOTH)
def test_event_past_horizon_stays_scheduled(scheduler):
    sim = Simulator(scheduler=scheduler)
    fired = []

    def proc():
        yield sim.timeout(10.0)
        fired.append(sim.now)

    sim.process(proc())
    sim.run(until=9.999)
    assert fired == []
    assert sim.now == 9.999
    assert sim.pending == 1
    sim.run()  # the parked event fires on the next run, sequence intact
    assert fired == [10.0]


@pytest.mark.parametrize("scheduler", BOTH)
def test_empty_queue_parks_clock_at_horizon(scheduler):
    sim = Simulator(scheduler=scheduler)
    sim.run(until=42.0)
    assert sim.now == 42.0


@pytest.mark.parametrize("scheduler", BOTH)
def test_zero_delay_self_reschedule_fifo(scheduler):
    """Zero-delay re-arms at the horizon run in creation order, same tick."""
    sim = Simulator(scheduler=scheduler)
    order = []

    def chain(tag, hops):
        for i in range(hops):
            yield sim.timeout(0.0)
            order.append((sim.now, tag, i))

    sim.process(chain("a", 3))
    sim.process(chain("b", 3))
    sim.run(until=0.0)
    assert sim.now == 0.0
    # Cascades interleave FIFO by creation: a0, b0, a1, b1, a2, b2.
    assert order == [(0.0, "a", 0), (0.0, "b", 0), (0.0, "a", 1),
                     (0.0, "b", 1), (0.0, "a", 2), (0.0, "b", 2)]


@pytest.mark.parametrize("scheduler", BOTH)
def test_repeated_horizon_runs_resume_cleanly(scheduler):
    sim = Simulator(scheduler=scheduler)
    fired = []

    def metronome():
        while True:
            yield sim.timeout(1.0)
            fired.append(sim.now)

    sim.process(metronome())
    for horizon in (0.5, 1.0, 2.75, 4.0):
        sim.run(until=horizon)
        assert sim.now == horizon
    assert fired == [1.0, 2.0, 3.0, 4.0]


# ----------------------------------------------------------------------
# lazy-cancel compaction
# ----------------------------------------------------------------------

@pytest.mark.parametrize("scheduler", BOTH)
def test_cancelled_timers_stay_bounded(scheduler):
    """Retransmit-style churn: guards that always cancel must not pile up."""
    sim = Simulator(scheduler=scheduler)
    peak = [0]

    def churner():
        for _ in range(5000):
            guard = sim.timeout(30.0)  # would linger 30 virtual s un-compacted
            guard.cancel()
            yield sim.timeout(0.001)
            peak[0] = max(peak[0], len(sim._queue))

    sim.process(churner())
    sim.run()
    # Without compaction the queue would hold every un-expired corpse
    # (~5,000 at peak); with it, the live population plus one compaction
    # threshold's worth of dead entries is the ceiling.
    assert peak[0] < 300, f"{scheduler} queue grew to {peak[0]}"
    assert sim.scheduler_stats["compactions"] > 0


@pytest.mark.parametrize("scheduler", BOTH)
def test_cancelled_event_callbacks_never_run(scheduler):
    sim = Simulator(scheduler=scheduler)
    fired = []

    def watcher():
        timer = sim.timeout(1.0)
        timer.add_callback(lambda e: fired.append("cancelled-timer"))
        timer.cancel()
        yield sim.timeout(2.0)
        fired.append("survivor")

    sim.process(watcher())
    sim.run()
    assert fired == ["survivor"]


# ----------------------------------------------------------------------
# stats exposure
# ----------------------------------------------------------------------

def test_scheduler_stats_shape():
    sim = Simulator(scheduler="calendar")
    for _ in range(10):
        sim.timeout(1.0)
    stats = sim.scheduler_stats
    for key in ("scheduler", "pending", "pushes", "buckets", "bucket_width",
                "occupied_buckets", "overflow", "resizes", "dead",
                "compactions", "cascade_events", "events"):
        assert key in stats, key
    assert stats["scheduler"] == "calendar"
    assert stats["pending"] == 10
    assert stats["events"] == stats["pushes"] + stats["cascade_events"]


def test_queue_stats_in_metrics_registry():
    sim = Simulator()
    sim.timeout(5.0)
    snapshot = sim.metrics.snapshot()
    assert snapshot["sim.kernel.events"]["total"] == 1
    assert snapshot["sim.kernel.pending"]["value"] == 1
    queue = snapshot["sim.kernel.queue"]["value"]
    assert queue["scheduler"] == "calendar"
    assert queue["pending"] == 1


def test_config_selects_scheduler():
    from repro.system.config import SystemConfig
    from repro.system.itc import ITCSystem

    for name in BOTH:
        campus = ITCSystem(SystemConfig(clusters=1, workstations_per_cluster=1,
                                        scheduler=name))
        assert campus.sim.scheduler_stats["scheduler"] == name


# ----------------------------------------------------------------------
# metropolis-scale determinism
# ----------------------------------------------------------------------

def _metropolis_run(scheduler):
    """A short day on a 1,000-workstation campus; returns its fingerprint."""
    from repro.system.config import SystemConfig
    from repro.system.itc import ITCSystem
    from repro.workload import provision_campus, run_campus_day

    campus = ITCSystem(SystemConfig(
        mode="revised", clusters=20, workstations_per_cluster=50,
        functional_payload_crypto=False, cache_max_files=60, seed=0,
        scheduler=scheduler,
    ))
    with campus.batch_setup():
        users = provision_campus(campus, hot_files=2, cold_files=2,
                                 shared_files=4, binary_files=2)
    summary = run_campus_day(campus, users, duration=10.0, warmup=5.0)
    return {
        "summary": summary,
        "events": campus.sim._sequence,
        "now": campus.sim.now,
    }


def test_metropolis_1000ws_replay_and_scheduler_equivalence():
    """Same seed, 1,000 workstations: replays and schedulers agree exactly."""
    first = _metropolis_run("calendar")
    replay = _metropolis_run("calendar")
    oracle = _metropolis_run("heap")
    assert first == replay       # determinism: bit-for-bit replay
    assert first == oracle       # equivalence: calendar vs reference heap
    assert first["summary"]["actions"] > 0
