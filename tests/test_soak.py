"""Tests for the continuous soak driver (repro.soak)."""

import json

import pytest

from tests.helpers import small_campus

from repro.rpc.node import _REPLY_CACHE_WINDOW
from repro.soak import InvariantChecker, SoakConfig, run_soak

QUIET = lambda _line: None

# One small soak, shared by the tests that only read the report: the run
# is deterministic, so re-running it per test would only burn wall time.
SMALL = SoakConfig(clusters=1, workstations_per_cluster=3, hours=0.5,
                   window=300.0, warmup=300.0, chaos_mean_interval=600.0,
                   chaos_mean_outage=30.0)


@pytest.fixture(scope="module")
def small_report():
    return run_soak(SMALL, echo=QUIET)


# ======================================================================
# SoakConfig
# ======================================================================


def test_config_derived_fields():
    config = SoakConfig(clusters=4, workstations_per_cluster=50, hours=6.0)
    assert config.workstations == 200
    assert config.duration == 21600.0


# ======================================================================
# InvariantChecker unit behaviour (no full soak needed)
# ======================================================================


def healthy_window(t=1000.0, opens=200.0, hit=0.9, failures=0.0):
    return {
        "t": t, "dt": 300.0,
        "counters": {"opens": opens},
        "hit_ratio": hit,
        "availability": {"failures": failures, "successes": opens,
                         "faults_injected": 0.0, "recoveries": 0.0,
                         "active_faults": 0.0},
    }


def checker_for(**overrides):
    campus = small_campus(clusters=1, workstations_per_cluster=2)
    campus.ensure_fault_controls()
    config = SoakConfig(clusters=1, workstations_per_cluster=2, **overrides)
    return campus, InvariantChecker(campus, config)


def test_healthy_window_has_no_violations():
    campus, checker = checker_for()
    # Skip windows still count as checks; run past the warm-up grace.
    for _ in range(3):
        found = checker.check(healthy_window())
    assert found == []


def test_break_invariant_flags_pending():
    campus, checker = checker_for(break_invariant=True)
    campus.sim.process(iter_timeout(campus.sim))
    found = checker.check(healthy_window())
    assert any("kernel.pending" in violation for violation in found)


def iter_timeout(sim):
    yield sim.timeout(1.0)


def test_hit_ratio_floor_after_skip_windows():
    campus, checker = checker_for(hit_ratio_skip_windows=1)
    assert checker.check(healthy_window(hit=0.1)) == []  # window 1: grace
    found = checker.check(healthy_window(hit=0.1))
    assert any("hit ratio" in violation for violation in found)
    # Quiet windows never trip the floor, whatever the ratio.
    assert checker.check(healthy_window(hit=0.0, opens=3.0)) == []


def test_failures_without_faults_is_flagged():
    campus, checker = checker_for()
    campus.availability.record_op("alice", False, now=10.0)
    found = checker.check(healthy_window(failures=4.0))
    assert any("no fault activity" in violation for violation in found)
    assert any("zero injected faults" in violation for violation in found)


def test_failures_within_fault_grace_are_fine():
    campus, checker = checker_for()
    campus.availability.record_fault("server_crash", "server0", now=900.0)
    window = healthy_window(t=1000.0, failures=4.0)
    window["availability"]["faults_injected"] = 1.0
    for _ in range(3):
        found = checker.check(window)
        window = healthy_window(t=window["t"] + 300.0, failures=2.0)
    # Failures trailing the fault within dt+grace are legitimate.
    assert found == []


def test_trailing_failures_past_grace_are_flagged():
    campus, checker = checker_for(fault_grace=100.0)
    window = healthy_window(t=1000.0, failures=1.0)
    window["availability"]["faults_injected"] = 1.0
    assert checker.check(window) == []
    late = healthy_window(t=3000.0, failures=1.0)
    found = checker.check(late)
    assert any("no fault activity" in violation for violation in found)


def test_mttr_episode_mismatch_is_flagged():
    campus, checker = checker_for()
    tracker = campus.availability
    tracker.record_op("alice", False, now=10.0)
    tracker.record_op("alice", True, now=20.0)
    tracker.mttr.add(1.0)  # corrupt: one extra MTTR sample
    found = checker.check(healthy_window())
    assert any("MTTR" in violation for violation in found)


def test_reply_cache_bound_is_checked():
    campus, checker = checker_for(reply_cache_slack=0)
    node = campus.servers[0].node
    node._reply_cache["conn"] = {i: b"r" for i in range(_REPLY_CACHE_WINDOW + 1)}
    found = checker.check(healthy_window())
    assert any("reply cache" in violation for violation in found)


# ======================================================================
# run_soak end to end
# ======================================================================


def test_small_soak_is_clean(small_report):
    assert small_report["violations"] == []
    assert small_report["windows"] == 6
    assert small_report["invariant_checks"] == 6
    assert small_report["events"] > 0
    assert small_report["events_per_second"] > 0
    assert small_report["virtual_actions"] > 0
    assert small_report["snapshot_overhead_us"]["mean"] > 0
    assert small_report["availability"]["attempts"] > 0


def test_soak_report_shape(small_report):
    shape = small_report["shape"]
    assert shape["workstations"] == 3
    assert shape["virtual_hours"] == 0.5
    assert small_report["ops_events_emitted"] >= 2  # start + end marks


def test_soak_streams_jsonl(tmp_path):
    metrics_path = tmp_path / "metrics.jsonl"
    events_path = tmp_path / "events.jsonl"
    config = SoakConfig(clusters=1, workstations_per_cluster=2, hours=0.25,
                        window=300.0, warmup=120.0,
                        metrics_path=str(metrics_path),
                        events_path=str(events_path))
    report = run_soak(config, echo=QUIET)
    windows = [json.loads(line) for line in
               metrics_path.read_text().splitlines()]
    assert len(windows) == report["windows"]
    for window in windows:
        assert {"t", "dt", "counters", "rates", "hit_ratio"} <= set(window)
    events = [json.loads(line) for line in events_path.read_text().splitlines()]
    phases = [e.get("phase") for e in events if e["event"] == "soak"]
    assert phases[0] == "start"
    assert phases[-1] == "end"


def test_soak_negative_gate():
    """The sabotaged run must report violations (the CI gate can fail)."""
    config = SoakConfig(clusters=1, workstations_per_cluster=2, hours=0.25,
                        window=300.0, warmup=60.0, break_invariant=True)
    report = run_soak(config, echo=QUIET)
    assert report["violations"]
    assert any("kernel.pending" in violation["detail"]
               for violation in report["violations"])


def test_soak_is_deterministic():
    config = SoakConfig(clusters=1, workstations_per_cluster=2, hours=0.25,
                        window=300.0, warmup=120.0)
    first = run_soak(config, echo=QUIET)
    second = run_soak(config, echo=QUIET)
    assert first["events"] == second["events"]
    assert first["virtual_actions"] == second["virtual_actions"]
    assert first["availability"]["attempts"] == second["availability"]["attempts"]


def test_cli_soak_exit_codes(tmp_path, capsys):
    from repro.__main__ import main

    report_path = tmp_path / "soak.json"
    code = main(["soak", "--clusters", "1", "--workstations", "2",
                 "--hours", "0.25", "--window", "300", "--warmup", "60",
                 "--json", str(report_path)])
    assert code == 0
    assert json.loads(report_path.read_text())["violations"] == []

    code = main(["soak", "--clusters", "1", "--workstations", "2",
                 "--hours", "0.25", "--window", "300", "--warmup", "60",
                 "--break-invariant"])
    assert code == 1
    out = capsys.readouterr().out
    assert "INVARIANT VIOLATION" in out
