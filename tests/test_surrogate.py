"""Tests for the §3.3 surrogate server and its low-function PC clients."""

import pytest

from repro.errors import FileNotFound, NotAuthenticated, PermissionDenied
from repro.virtue import PersonalComputer, SurrogateServer
from tests.helpers import alice_session, run, small_campus


@pytest.fixture
def setup():
    campus = small_campus(clusters=1, workstations_per_cluster=2)
    surrogate = SurrogateServer(campus.workstation(0), "pcnet0")
    pc = PersonalComputer(surrogate, "ibm-pc-1")
    run(campus, pc.attach("alice", "alice-pw"))
    return campus, surrogate, pc


class TestSurrogateBasics:
    def test_pc_reads_and_writes_vice(self, setup):
        campus, _surrogate, pc = setup
        run(campus, pc.write_file("/vice/usr/alice/pc.doc", b"from the PC"))
        assert run(campus, pc.read_file("/vice/usr/alice/pc.doc")) == b"from the PC"

    def test_pc_sees_files_made_by_workstations(self, setup):
        campus, _surrogate, pc = setup
        session = alice_session(campus, 1)
        run(campus, session.write_file("/vice/usr/alice/from-ws", b"ws data"))
        assert run(campus, pc.read_file("/vice/usr/alice/from-ws")) == b"ws data"
        assert "from-ws" in run(campus, pc.listdir("/vice/usr/alice"))

    def test_workstations_see_pc_writes(self, setup):
        campus, _surrogate, pc = setup
        run(campus, pc.write_file("/vice/usr/alice/pc-made", b"pc data"))
        session = alice_session(campus, 1)
        assert run(campus, session.read_file("/vice/usr/alice/pc-made")) == b"pc data"

    def test_stat_mkdir_remove_rename(self, setup):
        campus, _surrogate, pc = setup
        run(campus, pc.mkdir("/vice/usr/alice/pcdir"))
        run(campus, pc.write_file("/vice/usr/alice/pcdir/a", b"1"))
        status = run(campus, pc.stat("/vice/usr/alice/pcdir/a"))
        assert status["size"] == 1
        run(campus, pc.rename("/vice/usr/alice/pcdir/a", "/vice/usr/alice/pcdir/b"))
        assert run(campus, pc.listdir("/vice/usr/alice/pcdir")) == ["b"]
        run(campus, pc.remove("/vice/usr/alice/pcdir/b"))
        with pytest.raises(FileNotFound):
            run(campus, pc.read_file("/vice/usr/alice/pcdir/b"))

    def test_pc_benefits_from_surrogate_cache(self, setup):
        campus, surrogate, pc = setup
        run(campus, pc.write_file("/vice/usr/alice/hot", b"h" * 5000))
        server = campus.server(0)
        run(campus, pc.read_file("/vice/usr/alice/hot"))
        calls_before = server.node.calls_received.total
        run(campus, pc.read_file("/vice/usr/alice/hot"))
        # The surrogate's Venus served the re-read from its cache.
        assert server.node.calls_received.total == calls_before

    def test_unenrolled_pc_rejected(self, setup):
        campus, surrogate, _pc = setup
        rogue = PersonalComputer(surrogate, "rogue-pc")
        rogue.username = "alice"
        from repro.crypto import derive_user_key

        def go():
            rogue._connection = yield from rogue.node.connect(
                surrogate.host.name, "stranger", derive_user_key("stranger", "x")
            )

        with pytest.raises(Exception):
            run(campus, go())

    def test_call_before_attach_rejected(self, setup):
        campus, surrogate, _pc = setup
        fresh = PersonalComputer(surrogate, "fresh-pc")
        with pytest.raises(NotAuthenticated):
            run(campus, fresh.read_file("/vice/usr/alice/x"))


class TestSurrogateSecurityBoundary:
    def test_vice_acls_still_enforced_for_pc_users(self, setup):
        campus, surrogate, pc = setup
        campus.add_user("bob", "bob-pw")
        campus.create_user_volume("bob")
        # Lock bob's tree down.
        bob = campus.login(1, "bob", "bob-pw")
        acl = {"positive": {"bob": "rwidlak"}, "negative": {}}
        run(campus, bob.set_acl("/vice/usr/bob", acl))
        run(campus, bob.write_file("/vice/usr/bob/secret", b"s"))
        # The PC (as alice, via the surrogate) is refused by Vice itself.
        with pytest.raises(PermissionDenied):
            run(campus, pc.read_file("/vice/usr/bob/secret"))

    def test_campus_lan_traffic_stays_encrypted(self, setup):
        """The PC leg is cleartext, but the surrogate-to-Vice leg is not."""
        campus, surrogate, pc = setup
        secret = b"PC secrets crossing the campus backbone"
        cluster_frames = []
        original = campus.network.send

        def wiretap(datagram, kind="data", deliver=True):
            path = campus.network.route(datagram.source, datagram.destination)
            if any(seg.name == "cluster0" for seg in path):
                envelope = datagram.payload
                cluster_frames.append(
                    getattr(envelope, "body", b"") + getattr(envelope, "payload", b"")
                )
            return original(datagram, kind, deliver)

        campus.network.send = wiretap
        run(campus, pc.write_file("/vice/usr/alice/secret.doc", secret))
        campus.network.send = original
        assert cluster_frames, "expected surrogate-to-Vice traffic"
        for frame in cluster_frames:
            assert secret not in frame

    def test_pc_net_is_cleartext(self, setup):
        """Faithful wart: the cheap PC network runs in the clear."""
        campus, surrogate, pc = setup
        payload = b"visible on the cheap wire"
        pcnet_frames = []
        original = campus.network.send

        def wiretap(datagram, kind="data", deliver=True):
            path = campus.network.route(datagram.source, datagram.destination)
            if any(seg.name == "pcnet0" for seg in path):
                envelope = datagram.payload
                pcnet_frames.append(getattr(envelope, "payload", b""))
            return original(datagram, kind, deliver)

        campus.network.send = wiretap
        run(campus, pc.write_file("/vice/usr/alice/open.doc", payload))
        campus.network.send = original
        assert any(payload in frame for frame in pcnet_frames)
