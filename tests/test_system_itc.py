"""Tests for the ITCSystem facade: setup-time administration and metrics."""

import pytest

from repro import ITCSystem, SystemConfig
from repro.errors import InvalidArgument
from repro.vice.protection import AccessList
from tests.helpers import run


@pytest.fixture
def campus():
    return ITCSystem(SystemConfig(clusters=2, workstations_per_cluster=2))


class TestConstruction:
    def test_topology_matches_config(self, campus):
        assert len(campus.servers) == 2
        assert len(campus.workstations) == 4
        assert campus.config.total_workstations == 4
        assert "backbone" in campus.network.segments
        assert "cluster1" in campus.network.segments

    def test_lookup_by_name_and_index(self, campus):
        assert campus.workstation("ws1-0") is campus.workstation(2)
        assert campus.server("server1") is campus.server(1)

    def test_root_volume_mounted(self, campus):
        entry, rest = campus.servers[0].location.resolve("/anything")
        assert entry.volume_id == "root"

    def test_databases_replicated_at_all_servers(self, campus):
        campus.add_user("u", "pw")
        for server in campus.servers:
            assert server.protection.is_user("u")
            assert server.location.version == campus.servers[0].location.version


class TestVolumeAdministration:
    def test_create_volume_makes_stub_dirs(self, campus):
        campus.create_volume("/a/b/c", custodian=1, volume_id="deep")
        root = campus.volume("root")
        assert root.fs.exists("/a/b/c")
        entry, rest = campus.servers[0].location.resolve("/a/b/c/file")
        assert entry.volume_id == "deep"
        assert rest == "/file"

    def test_nested_mounts_resolve_to_deepest(self, campus):
        campus.create_volume("/proj", custodian=0, volume_id="proj")
        campus.create_volume("/proj/sub", custodian=1, volume_id="projsub")
        entry, _ = campus.servers[0].location.resolve("/proj/sub/x")
        assert entry.volume_id == "projsub"
        entry, _ = campus.servers[0].location.resolve("/proj/other")
        assert entry.volume_id == "proj"

    def test_user_volume_lands_in_requested_cluster(self, campus):
        campus.add_user("u", "pw")
        campus.create_user_volume("u", cluster=1)
        assert "u-u" in campus.server(1).volumes
        assert campus.servers[0].location.custodian_of("/usr/u") == "server1"

    def test_populate_builds_directories(self, campus):
        volume = campus.create_volume("/data", custodian=0, volume_id="data")
        campus.populate(volume, {"/x/y/z.txt": b"deep", "/top.txt": b"shallow"})
        assert volume.read("/x/y/z.txt") == b"deep"
        assert volume.read("/top.txt") == b"shallow"

    def test_volume_lookup_missing(self, campus):
        with pytest.raises(InvalidArgument):
            campus.volume("ghost")

    def test_set_directory_acl(self, campus):
        campus.add_user("u", "pw")
        volume = campus.create_user_volume("u")
        acl = AccessList()
        acl.grant("u", "rwidlak")
        campus.set_directory_acl(volume, "/", acl)
        assert "system:anyuser" not in volume.acls[volume.fs.root.number].positive


class TestMetrics:
    def test_reset_counters(self, campus):
        campus.add_user("u", "pw")
        campus.create_user_volume("u")
        session = campus.login(0, "u", "pw")
        run(campus, session.write_file("/vice/usr/u/f", b"x"))
        assert campus.server(0).call_mix.total > 0
        campus.reset_counters()
        assert campus.server(0).call_mix.total == 0
        assert campus.workstation(0).venus.cache.hits == 0

    def test_mean_hit_ratio_empty(self, campus):
        assert campus.mean_hit_ratio() == 0.0

    def test_campus_call_mix_empty(self, campus):
        assert campus.campus_call_mix() == {}

    def test_busiest_server_defined(self, campus):
        server, utilization = campus.busiest_server()
        assert server in campus.servers
        assert utilization >= 0.0

    def test_cross_cluster_bytes_counts_backbone_only(self, campus):
        campus.add_user("u", "pw")
        campus.create_user_volume("u", cluster=0)
        local = campus.login("ws0-0", "u", "pw")
        run(campus, local.write_file("/vice/usr/u/f", b"y" * 1000))
        assert campus.cross_cluster_bytes() == 0  # all intra-cluster
        remote = campus.login("ws1-0", "u", "pw")
        run(campus, remote.read_file("/vice/usr/u/f"))
        assert campus.cross_cluster_bytes() > 0


class TestConfig:
    def test_with_override(self):
        config = SystemConfig().with_(clusters=5)
        assert config.clusters == 5
        assert config.mode == "revised"

    def test_prototype_and_revised_helpers(self):
        assert SystemConfig.prototype().mode == "prototype"
        assert SystemConfig.revised().mode == "revised"

    def test_invalid_mode_rejected(self):
        with pytest.raises(Exception):
            ITCSystem(SystemConfig(mode="quantum"))


class TestBatchSetup:
    def test_sync_deferred_until_block_exit(self, campus):
        replica = campus.servers[1].protection
        with campus.batch_setup():
            campus.add_user("newcomer", "pw")
            assert "newcomer" not in replica.users  # push coalesced
        assert "newcomer" in replica.users          # one sync at exit

    def test_later_setup_calls_see_earlier_ones(self, campus):
        with campus.batch_setup():
            campus.add_user("alice", "pw")
            campus.add_group("team", members=["alice"])
            volume = campus.create_user_volume("alice", cluster=1)
        assert "alice" in campus.servers[0].protection.cps("alice")
        assert "team" in campus.servers[1].protection.cps("alice")
        entry, _ = campus.servers[0].location.resolve("/usr/alice/x")
        assert entry.volume_id == volume.volume_id

    def test_nested_blocks_sync_once_at_outermost_exit(self, campus):
        replica = campus.servers[1].protection
        with campus.batch_setup():
            with campus.batch_setup():
                campus.add_user("inner", "pw")
            assert "inner" not in replica.users
            campus.add_user("outer", "pw")
        assert {"inner", "outer"} <= replica.users

    def test_no_sync_without_mutation(self, campus):
        before = campus.servers[1].protection.version
        with campus.batch_setup():
            pass
        assert campus.servers[1].protection.version == before

    def test_batched_state_matches_unbatched(self):
        def provision(campus):
            campus.add_user("u1", "pw")
            campus.add_group("g", members=["u1"])
            campus.create_user_volume("u1", cluster=1)

        plain = ITCSystem(SystemConfig(clusters=2, workstations_per_cluster=2))
        provision(plain)
        batched = ITCSystem(SystemConfig(clusters=2, workstations_per_cluster=2))
        with batched.batch_setup():
            provision(batched)
        for index in (0, 1):
            assert (batched.servers[index].protection.snapshot()
                    == plain.servers[index].protection.snapshot())
            assert (batched.servers[index].location.snapshot()
                    == plain.servers[index].location.snapshot())
