"""Tests for the timesharing comparator (§2.2's yardstick)."""

import pytest

from repro.sim import Simulator
from repro.sim.rand import WorkloadRandom
from repro.workload.synthetic import UserProfile
from repro.workload.timesharing import (
    TimesharingSystem,
    TimesharingUser,
    recompile_task,
    run_timesharing_compile,
    run_timesharing_session,
)


class TestTimesharingSystem:
    def test_file_roundtrip(self):
        sim = Simulator()
        system = TimesharingSystem(sim)

        def go():
            yield from system.write_file("/usr/f", b"shared data", "u")
            return (yield from system.read_file("/usr/f"))

        assert sim.run_until_complete(sim.process(go())) == b"shared data"

    def test_compute_shares_one_cpu(self):
        sim = Simulator()
        system = TimesharingSystem(sim, cpu_speed=1.0)
        finished = []

        def worker(tag):
            yield from system.compute(10.0)
            finished.append((tag, sim.now))

        sim.process(worker("a"))
        sim.process(worker("b"))
        sim.run()
        assert finished[0][1] == pytest.approx(10.0)
        assert finished[1][1] == pytest.approx(20.0)  # queued behind a

    def test_disks_round_robin(self):
        sim = Simulator()
        system = TimesharingSystem(sim, disk_count=2)
        first = system.disk()
        second = system.disk()
        assert first is not second
        assert system.disk() is first

    def test_stat_on_shared_machine(self):
        sim = Simulator()
        system = TimesharingSystem(sim)

        def go():
            yield from system.write_file("/usr/f", b"123", "u")
            return (yield from system.stat("/usr/f"))

        assert sim.run_until_complete(sim.process(go()))["size"] == 3


class TestTimesharingUsers:
    def test_session_reports_latencies(self):
        result = run_timesharing_session(4, duration=600.0)
        assert result["actions"] > 0
        assert result["mean_latency"] > 0
        assert 0.0 <= result["cpu"] <= 1.0

    def test_latency_grows_with_logins(self):
        light = run_timesharing_session(3, duration=900.0)
        heavy = run_timesharing_session(40, duration=900.0)
        assert heavy["mean_latency"] > light["mean_latency"]
        assert heavy["cpu"] > light["cpu"]

    def test_user_files_are_private_trees(self):
        sim = Simulator()
        system = TimesharingSystem(sim)
        rng = WorkloadRandom(1)
        a = TimesharingUser(system, "a", UserProfile(), rng.fork(1))
        b = TimesharingUser(system, "b", UserProfile(), rng.fork(2))
        assert not set(a.paths) & set(b.paths)


class TestRecompileComparison:
    def test_compile_task_slows_with_load(self):
        light = run_timesharing_compile(5, source_count=10)
        heavy = run_timesharing_compile(50, source_count=10)
        assert heavy["task_seconds"] > light["task_seconds"] * 1.3

    def test_task_output_written(self):
        sim = Simulator()
        system = TimesharingSystem(sim)
        system.fs.makedirs("/usr/task")
        system.fs.write("/usr/task/src.c", b"int main(){}", owner="task")

        class Adapter:
            def stat(self, path):
                return system.stat(path)

            def read_file(self, path):
                return system.read_file(path)

            def compute(self, seconds):
                return system.compute(seconds)

            def write_output(self, name, data):
                return system.write_file(f"/usr/task/{name}", data, "task")

        sim.run_until_complete(
            sim.process(recompile_task(Adapter(), ["/usr/task/src.c"]))
        )
        assert system.fs.exists("/usr/task/obj_000.o")
