"""Unit tests for the in-memory Unix file system."""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    TooManySymlinks,
)
from repro.storage.unixfs import FileType, UnixFileSystem


@pytest.fixture
def fs():
    return UnixFileSystem()


class TestCreateAndRead:
    def test_create_and_read(self, fs):
        fs.create("/hello.txt", b"hi")
        assert fs.read("/hello.txt") == b"hi"

    def test_create_exclusive(self, fs):
        fs.create("/x", b"")
        with pytest.raises(FileExists):
            fs.create("/x", b"")

    def test_create_in_missing_dir(self, fs):
        with pytest.raises(FileNotFound):
            fs.create("/no/such/file", b"")

    def test_create_under_file_rejected(self, fs):
        fs.create("/f", b"")
        with pytest.raises(NotADirectory):
            fs.create("/f/child", b"")

    def test_read_missing(self, fs):
        with pytest.raises(FileNotFound):
            fs.read("/missing")

    def test_read_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.read("/d")

    def test_cannot_create_root(self, fs):
        with pytest.raises(InvalidArgument):
            fs.create("/", b"")


class TestWrite:
    def test_write_replaces_whole_contents(self, fs):
        fs.create("/f", b"old contents")
        fs.write("/f", b"new")
        assert fs.read("/f") == b"new"

    def test_write_creates_by_default(self, fs):
        fs.write("/fresh", b"data")
        assert fs.read("/fresh") == b"data"

    def test_write_no_create(self, fs):
        with pytest.raises(FileNotFound):
            fs.write("/fresh", b"data", create=False)

    def test_write_bumps_version(self, fs):
        node = fs.create("/f", b"v1")
        assert node.version == 1
        fs.write("/f", b"v2")
        assert node.version == 2

    def test_write_to_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.write("/d", b"x")

    def test_append(self, fs):
        fs.create("/f", b"ab")
        fs.append("/f", b"cd")
        assert fs.read("/f") == b"abcd"


class TestDirectories:
    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/d")
        fs.create("/d/b", b"")
        fs.create("/d/a", b"")
        assert fs.listdir("/d") == ["a", "b"]

    def test_mkdir_exist_ok(self, fs):
        fs.mkdir("/d")
        fs.mkdir("/d", exist_ok=True)
        with pytest.raises(FileExists):
            fs.mkdir("/d")

    def test_makedirs(self, fs):
        fs.makedirs("/a/b/c")
        assert fs.stat("/a/b/c").file_type == FileType.DIRECTORY

    def test_makedirs_through_existing(self, fs):
        fs.mkdir("/a")
        fs.makedirs("/a/b")
        assert fs.exists("/a/b")

    def test_listdir_of_file_rejected(self, fs):
        fs.create("/f", b"")
        with pytest.raises(NotADirectory):
            fs.listdir("/f")

    def test_rmdir_empty(self, fs):
        fs.mkdir("/d")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_rmdir_nonempty_rejected(self, fs):
        fs.makedirs("/d/sub")
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir("/d")

    def test_rmdir_of_file_rejected(self, fs):
        fs.create("/f", b"")
        with pytest.raises(NotADirectory):
            fs.rmdir("/f")

    def test_rmtree(self, fs):
        fs.makedirs("/d/a/b")
        fs.create("/d/a/b/f", b"x")
        fs.rmtree("/d")
        assert not fs.exists("/d")

    def test_directory_version_bumps_on_entry_change(self, fs):
        fs.mkdir("/d")
        before = fs.stat("/d").version
        fs.create("/d/f", b"")
        assert fs.stat("/d").version == before + 1


class TestUnlink:
    def test_unlink_file(self, fs):
        fs.create("/f", b"")
        fs.unlink("/f")
        assert not fs.exists("/f")

    def test_unlink_missing(self, fs):
        with pytest.raises(FileNotFound):
            fs.unlink("/f")

    def test_unlink_directory_rejected(self, fs):
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.unlink("/d")

    def test_unlink_symlink_not_target(self, fs):
        fs.create("/target", b"data")
        fs.symlink("/link", "/target")
        fs.unlink("/link")
        assert fs.exists("/target")
        assert not fs.exists("/link", follow=False)


class TestSymlinks:
    def test_follow_absolute(self, fs):
        fs.create("/real", b"payload")
        fs.symlink("/alias", "/real")
        assert fs.read("/alias") == b"payload"

    def test_follow_relative(self, fs):
        fs.makedirs("/d")
        fs.create("/d/real", b"x")
        fs.symlink("/d/alias", "real")
        assert fs.read("/d/alias") == b"x"

    def test_intermediate_symlink(self, fs):
        fs.makedirs("/data/deep")
        fs.create("/data/deep/f", b"v")
        fs.symlink("/shortcut", "/data/deep")
        assert fs.read("/shortcut/f") == b"v"

    def test_lstat_does_not_follow(self, fs):
        fs.create("/real", b"payload")
        fs.symlink("/alias", "/real")
        assert fs.stat("/alias", follow=False).file_type == FileType.SYMLINK
        assert fs.stat("/alias").file_type == FileType.FILE

    def test_readlink(self, fs):
        fs.symlink("/l", "/somewhere")
        assert fs.readlink("/l") == "/somewhere"

    def test_readlink_of_file_rejected(self, fs):
        fs.create("/f", b"")
        with pytest.raises(InvalidArgument):
            fs.readlink("/f")

    def test_symlink_loop_detected(self, fs):
        fs.symlink("/a", "/b")
        fs.symlink("/b", "/a")
        with pytest.raises(TooManySymlinks):
            fs.read("/a")

    def test_dangling_symlink(self, fs):
        fs.symlink("/l", "/nowhere")
        with pytest.raises(FileNotFound):
            fs.read("/l")
        assert fs.exists("/l", follow=False)
        assert not fs.exists("/l")


class TestRename:
    def test_rename_file(self, fs):
        fs.create("/a", b"data")
        fs.rename("/a", "/b")
        assert fs.read("/b") == b"data"
        assert not fs.exists("/a")

    def test_rename_preserves_inode(self, fs):
        node = fs.create("/a", b"data")
        fs.rename("/a", "/b")
        assert fs.resolve("/b").number == node.number

    def test_rename_directory(self, fs):
        fs.makedirs("/d/sub")
        fs.create("/d/sub/f", b"x")
        fs.rename("/d", "/e")
        assert fs.read("/e/sub/f") == b"x"

    def test_rename_into_own_subtree_rejected(self, fs):
        fs.makedirs("/d/sub")
        with pytest.raises(InvalidArgument):
            fs.rename("/d", "/d/sub/d2")

    def test_rename_replaces_plain_file(self, fs):
        fs.create("/a", b"new")
        fs.create("/b", b"old")
        fs.rename("/a", "/b")
        assert fs.read("/b") == b"new"

    def test_rename_over_nonempty_dir_rejected(self, fs):
        fs.mkdir("/a")
        fs.makedirs("/b/inner")
        with pytest.raises(DirectoryNotEmpty):
            fs.rename("/a", "/b")

    def test_rename_dir_over_file_rejected(self, fs):
        fs.mkdir("/d")
        fs.create("/f", b"")
        with pytest.raises(NotADirectory):
            fs.rename("/d", "/f")

    def test_rename_file_over_empty_dir_rejected(self, fs):
        fs.create("/f", b"")
        fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            fs.rename("/f", "/d")

    def test_rename_missing_source(self, fs):
        with pytest.raises(FileNotFound):
            fs.rename("/a", "/b")

    def test_rename_to_same_path_noop(self, fs):
        fs.create("/a", b"x")
        fs.rename("/a", "/a")
        assert fs.read("/a") == b"x"


class TestStatAndAccounting:
    def test_stat_fields(self, fs):
        fs.create("/f", b"12345", owner="alice")
        st = fs.stat("/f")
        assert st.size == 5
        assert st.owner == "alice"
        assert st.file_type == FileType.FILE
        assert st.version == 1

    def test_mtime_uses_clock(self):
        current = {"t": 100.0}
        fs = UnixFileSystem(clock=lambda: current["t"])
        fs.create("/f", b"")
        assert fs.stat("/f").mtime == 100.0
        current["t"] = 200.0
        fs.write("/f", b"x")
        assert fs.stat("/f").mtime == 200.0

    def test_total_bytes_and_file_count(self, fs):
        fs.create("/a", b"xx")
        fs.makedirs("/d")
        fs.create("/d/b", b"yyy")
        assert fs.total_bytes == 5
        assert fs.file_count == 2

    def test_walk_covers_everything(self, fs):
        fs.makedirs("/a/b")
        fs.create("/a/f", b"")
        fs.symlink("/l", "/a")
        paths = [path for path, _node in fs.walk("/")]
        assert paths == ["/", "/a", "/a/b", "/a/f", "/l"]

    def test_set_mode(self, fs):
        fs.create("/f", b"")
        fs.set_mode("/f", 0o600)
        assert fs.stat("/f").mode_bits == 0o600

    def test_inode_numbers_never_reused(self, fs):
        first = fs.create("/a", b"").number
        fs.unlink("/a")
        second = fs.create("/a", b"").number
        assert second != first
