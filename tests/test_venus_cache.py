"""Unit tests for the whole-file cache and the mount hint cache."""

import pytest

from repro.errors import NoSpace
from repro.sim import Simulator
from repro.venus.cache import CacheEntry, WholeFileCache
from repro.venus.hints import MountHints


def entry(path, size=100, fid=None, version=1):
    return CacheEntry(path, fid or f"vol.{abs(hash(path)) % 10000}", b"x" * size, version, {})


@pytest.fixture
def sim():
    return Simulator()


class TestLookupAndInsert:
    def test_insert_and_lookup(self, sim):
        cache = WholeFileCache(sim)
        cache.insert(entry("/a"))
        assert cache.lookup("/a") is not None
        assert cache.lookup("/missing") is None

    def test_lookup_by_fid(self, sim):
        cache = WholeFileCache(sim)
        cache.insert(entry("/a", fid="v.1"))
        assert cache.lookup_fid("v.1").vice_path == "/a"
        assert cache.lookup_fid("v.999") is None

    def test_replace_updates_fid_index(self, sim):
        cache = WholeFileCache(sim)
        cache.insert(entry("/a", fid="v.1"))
        cache.insert(entry("/a", fid="v.2"))
        assert cache.lookup_fid("v.1") is None
        assert cache.lookup_fid("v.2") is not None

    def test_remove(self, sim):
        cache = WholeFileCache(sim)
        cache.insert(entry("/a", fid="v.1"))
        cache.remove("/a")
        assert cache.lookup("/a") is None
        assert cache.lookup_fid("v.1") is None

    def test_rename_moves_key_keeps_fid(self, sim):
        cache = WholeFileCache(sim)
        cache.insert(entry("/a", fid="v.1"))
        cache.rename("/a", "/b")
        assert cache.lookup("/a") is None
        assert cache.lookup("/b").fid == "v.1"
        assert cache.lookup_fid("v.1").vice_path == "/b"

    def test_hit_ratio(self, sim):
        cache = WholeFileCache(sim)
        cache.note_hit()
        cache.note_hit()
        cache.note_miss()
        assert cache.hit_ratio == pytest.approx(2 / 3)
        assert WholeFileCache(sim).hit_ratio == 0.0


class TestCountPolicy:
    """The prototype's LRU bounded by file count (§3.5.1)."""

    def test_evicts_lru_beyond_count(self, sim):
        cache = WholeFileCache(sim, policy="count", max_files=2)
        cache.insert(entry("/a"))
        sim.run(until=1.0)
        cache.insert(entry("/b"))
        sim.run(until=2.0)
        cache.insert(entry("/c"))
        assert cache.lookup("/a") is None  # oldest went
        assert len(cache) == 2

    def test_recent_touch_protects(self, sim):
        cache = WholeFileCache(sim, policy="count", max_files=2)
        cache.insert(entry("/a"))
        sim.run(until=1.0)
        cache.insert(entry("/b"))
        sim.run(until=2.0)
        cache.lookup("/a")  # touch /a: now /b is LRU
        cache.insert(entry("/c"))
        assert cache.lookup("/b") is None
        assert cache.lookup("/a") is not None

    def test_count_policy_ignores_bytes(self, sim):
        """The prototype flaw: file count is bounded, bytes are not."""
        cache = WholeFileCache(sim, policy="count", max_files=10, max_bytes=100)
        for index in range(5):
            cache.insert(entry(f"/big{index}", size=10_000))
        assert len(cache) == 5
        assert cache.used_bytes == 50_000  # way past max_bytes: not enforced


class TestSpacePolicy:
    """The reimplementation's space-limited LRU (§5.3)."""

    def test_evicts_until_bytes_fit(self, sim):
        cache = WholeFileCache(sim, policy="space", max_bytes=250)
        cache.insert(entry("/a", size=100))
        sim.run(until=1.0)
        cache.insert(entry("/b", size=100))
        sim.run(until=2.0)
        cache.insert(entry("/c", size=100))
        assert cache.lookup("/a") is None
        assert cache.used_bytes <= 250

    def test_large_insert_evicts_several(self, sim):
        cache = WholeFileCache(sim, policy="space", max_bytes=300)
        for index, path in enumerate(("/a", "/b", "/c")):
            cache.insert(entry(path, size=100))
            sim.run(until=index + 1.0)
        cache.insert(entry("/huge", size=250))
        assert cache.lookup("/huge") is not None
        assert cache.used_bytes <= 300

    def test_oversized_file_rejected(self, sim):
        cache = WholeFileCache(sim, policy="space", max_bytes=100)
        with pytest.raises(NoSpace):
            cache.insert(entry("/monster", size=1000))
        assert cache.lookup("/monster") is None

    def test_space_policy_ignores_count(self, sim):
        cache = WholeFileCache(sim, policy="space", max_files=2, max_bytes=10_000)
        for index in range(5):
            cache.insert(entry(f"/f{index}", size=10))
        assert len(cache) == 5


class TestPinning:
    def test_open_entries_not_evicted(self, sim):
        cache = WholeFileCache(sim, policy="count", max_files=1)
        pinned = entry("/open")
        pinned.open_count = 1
        cache.insert(pinned)
        sim.run(until=1.0)
        cache.insert(entry("/new"))
        assert cache.lookup("/open") is not None  # survived despite LRU

    def test_dirty_entries_not_evicted(self, sim):
        cache = WholeFileCache(sim, policy="count", max_files=1)
        dirty = entry("/dirty")
        dirty.dirty = True
        cache.insert(dirty)
        sim.run(until=1.0)
        cache.insert(entry("/new"))
        assert cache.lookup("/dirty") is not None


class TestInvalidation:
    def test_invalidate_fid_marks_stale(self, sim):
        cache = WholeFileCache(sim)
        cache.insert(entry("/a", fid="v.1"))
        assert cache.invalidate_fid("v.1")
        assert not cache.lookup("/a").callback_valid
        assert cache.invalidations == 1

    def test_invalidate_unknown_fid(self, sim):
        cache = WholeFileCache(sim)
        assert not cache.invalidate_fid("v.404")

    def test_invalidate_all(self, sim):
        cache = WholeFileCache(sim)
        cache.insert(entry("/a"))
        cache.insert(entry("/b"))
        cache.invalidate_all()
        assert all(not e.callback_valid for e in cache)

    def test_bad_policy_rejected(self, sim):
        with pytest.raises(ValueError):
            WholeFileCache(sim, policy="magic")


class TestMountHints:
    def test_longest_prefix(self):
        hints = MountHints()
        hints.install({"mount_path": "/", "volume_id": "root", "custodian": "s0", "ro_servers": []})
        hints.install({"mount_path": "/usr/a", "volume_id": "ua", "custodian": "s1", "ro_servers": []})
        assert hints.lookup("/usr/a/file")["volume_id"] == "ua"
        assert hints.lookup("/unix/bin")["volume_id"] == "root"

    def test_miss_returns_none(self):
        hints = MountHints()
        assert hints.lookup("/anything") is None
        assert hints.misses == 1

    def test_redirect_updates_custodian(self):
        hints = MountHints()
        hints.install({"mount_path": "/usr/a", "volume_id": "ua", "custodian": "s1", "ro_servers": []})
        hints.redirect("/usr/a", "s9")
        assert hints.lookup("/usr/a/f")["custodian"] == "s9"

    def test_forget(self):
        hints = MountHints()
        hints.install({"mount_path": "/usr/a", "volume_id": "ua", "custodian": "s1", "ro_servers": []})
        hints.forget("/usr/a")
        assert hints.lookup("/usr/a/f") is None

    def test_refresh_counted(self):
        hints = MountHints()
        record = {"mount_path": "/m", "volume_id": "v", "custodian": "s", "ro_servers": []}
        hints.install(record)
        hints.install(dict(record))
        assert hints.refreshes == 1
