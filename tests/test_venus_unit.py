"""Focused unit tests for Venus internals not covered by integration tests."""

import pytest

from repro.errors import IsADirectory, NotADirectory, NoSpace
from repro.venus.venus import Venus
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"


class TestFidHelpers:
    def test_rw_fid_strips_replica_suffix(self):
        assert Venus._rw_fid("vol-ro.5") == "vol.5"
        assert Venus._rw_fid("vol.5") == "vol.5"

    def test_fid_server_for_new_fid(self):
        campus = small_campus()
        venus = campus.workstation(0).venus
        entry = {"custodian": "server0", "ro_servers": [], "mount_path": "/usr/alice"}
        assert venus._fid_server(entry, "new:/usr/alice/x") == "server0"


class TestOpenSemantics:
    def test_open_directory_as_file_rejected(self):
        campus = small_campus()
        session = alice_session(campus)
        run(campus, session.mkdir(f"{HOME}/d"))
        with pytest.raises((IsADirectory, NotADirectory)):
            run(campus, session.open(f"{HOME}/d", "r"))

    def test_concurrent_opens_share_entry(self):
        campus = small_campus()
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"x"))
        fd1 = run(campus, session.open(f"{HOME}/f", "r"))
        fd2 = run(campus, session.open(f"{HOME}/f", "r"))
        venus = campus.workstation(0).venus
        entry = venus.cache.lookup("/usr/alice/f")
        assert entry.open_count == 2
        run(campus, session.close(fd1))
        run(campus, session.close(fd2))
        assert entry.open_count == 0

    def test_open_entry_survives_eviction_pressure(self):
        campus = small_campus(cache_max_bytes=5000)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/pinned", b"p" * 3000))
        fd = run(campus, session.open(f"{HOME}/pinned", "r"))
        # Pull in other files to force eviction pressure.
        for index in range(3):
            run(campus, session.write_file(f"{HOME}/fill{index}", b"f" * 1500))
            run(campus, session.read_file(f"{HOME}/fill{index}"))
        venus = campus.workstation(0).venus
        assert venus.cache.lookup("/usr/alice/pinned") is not None
        run(campus, session.close(fd))

    def test_oversized_file_raises_nospace(self):
        campus = small_campus(cache_max_bytes=1000)
        session = alice_session(campus)
        # Writing works: the store reaches the custodian even though the
        # resulting copy cannot be kept in the cache...
        run(campus, session.write_file(f"{HOME}/big", b"B" * 5000))
        assert campus.volume("u-alice").read("/big") == b"B" * 5000
        assert campus.workstation(0).venus.cache.lookup("/usr/alice/big") is None
        # ...but fetching it back cannot fit the cache: the whole-file
        # architecture's known limitation (files must fit the cache disk).
        with pytest.raises(NoSpace):
            run(campus, session.read_file(f"{HOME}/big"))


class TestPendingBreakBookkeeping:
    def test_pending_breaks_bounded(self):
        campus = small_campus()
        venus = campus.workstation(0).venus
        for index in range(600):
            venus._pending_breaks[f"vol.{index}"] = float(index)
        # Trigger the pruning path via the handler.
        def handler():
            result = yield from venus._break_callback_handler(
                None, {"fid": "vol.9999"}, b""
            )
            return result

        run(campus, handler())
        assert len(venus._pending_breaks) <= 512

    def test_break_for_cached_file_does_not_accumulate(self):
        campus = small_campus()
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"x"))
        venus = campus.workstation(0).venus
        entry = venus.cache.lookup("/usr/alice/f")

        def handler():
            yield from venus._break_callback_handler(None, {"fid": entry.fid}, b"")

        run(campus, handler())
        assert entry.fid not in venus._pending_breaks
        assert not entry.callback_valid


class TestConnectionManagement:
    def test_connections_reused_per_user_server(self):
        campus = small_campus()
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/a", b"1"))
        run(campus, session.write_file(f"{HOME}/b", b"2"))
        server = campus.server(0)
        # One user connection (plus none extra for the second op).
        user_conns = [
            c for c in server.node.connections.values() if c.username == "alice"
        ]
        assert len(user_conns) == 1

    def test_logout_closes_connections(self):
        campus = small_campus()
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/a", b"1"))
        venus = campus.workstation(0).venus
        assert len(venus._connections) == 1
        session.logout()
        assert len(venus._connections) == 0

    def test_multiple_users_multiple_connections(self):
        campus = small_campus()
        campus.add_user("bob", "bob-pw")
        alice = alice_session(campus)
        bob = campus.login(0, "bob", "bob-pw")
        run(campus, alice.write_file(f"{HOME}/a", b"1"))
        run(campus, bob.listdir("/vice/usr"))
        venus = campus.workstation(0).venus
        assert len(venus._connections) == 2


class TestStatCaching:
    def test_stat_served_from_valid_cache_entry(self):
        campus = small_campus(mode="revised")
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"xyz"))
        server = campus.server(0)
        before = server.node.calls_received.total
        status = run(campus, session.stat(f"{HOME}/f"))
        assert status["size"] == 3
        assert server.node.calls_received.total == before  # no server call

    def test_stat_of_uncached_goes_to_server(self):
        campus = small_campus(mode="revised")
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"xyz"))
        campus.workstation(0).venus.cache.remove("/usr/alice/f")
        server = campus.server(0)
        before = server.call_mix.count("status")
        run(campus, session.stat(f"{HOME}/f"))
        assert server.call_mix.count("status") == before + 1
