"""Unit tests for volumes: quota, cloning, fids, snapshots, state."""

import pytest

from repro.errors import (
    FileNotFound,
    InvalidArgument,
    QuotaExceeded,
    ReadOnlyFileSystem,
    VolumeOffline,
)
from repro.storage.unixfs import FileType
from repro.vice.ids import make_fid, split_fid
from repro.vice.volume import Volume


@pytest.fixture
def volume():
    vol = Volume("vol1", "test volume", owner="satya")
    vol.mkdir("/docs", owner="satya")
    vol.create_file("/docs/a.txt", b"alpha", owner="satya")
    return vol


class TestFids:
    def test_fid_roundtrip(self):
        fid = make_fid("vol1", 17)
        assert split_fid(fid) == ("vol1", 17)

    def test_malformed_fid(self):
        with pytest.raises(InvalidArgument):
            split_fid("no-dot")
        with pytest.raises(InvalidArgument):
            split_fid("vol1.notanumber")

    def test_volume_id_with_dot_rejected(self):
        with pytest.raises(InvalidArgument):
            Volume("bad.id", "x")

    def test_fid_of_and_vnode_lookup(self, volume):
        fid = volume.fid_of("/docs/a.txt")
        _vid, vnode = split_fid(fid)
        assert volume.inode_by_vnode(vnode).data == b"alpha"

    def test_fid_invariant_across_rename(self, volume):
        fid = volume.fid_of("/docs/a.txt")
        volume.rename("/docs/a.txt", "/docs/b.txt")
        assert volume.fid_of("/docs/b.txt") == fid

    def test_vnode_lookup_after_delete_fails(self, volume):
        _vid, vnode = split_fid(volume.fid_of("/docs/a.txt"))
        volume.unlink("/docs/a.txt")
        with pytest.raises(FileNotFound):
            volume.inode_by_vnode(vnode)

    def test_path_of_walks_parents(self, volume):
        _vid, vnode = split_fid(volume.fid_of("/docs/a.txt"))
        assert volume.path_of(vnode) == "/docs/a.txt"
        assert volume.path_of(volume.fs.root.number) == "/"

    def test_parent_of(self, volume):
        _vid, vnode = split_fid(volume.fid_of("/docs/a.txt"))
        parent = volume.parent_of(vnode)
        assert volume.path_of(parent.number) == "/docs"


class TestQuota:
    def test_quota_enforced_on_create(self):
        vol = Volume("q", "quota", quota_bytes=10)
        vol.create_file("/small", b"12345")
        with pytest.raises(QuotaExceeded):
            vol.create_file("/big", b"123456789")

    def test_quota_counts_growth_not_rewrite(self):
        vol = Volume("q", "quota", quota_bytes=10)
        vol.create_file("/f", b"1234567890")
        vol.write("/f", b"0987654321")  # same size: fine
        with pytest.raises(QuotaExceeded):
            vol.write("/f", b"12345678901")

    def test_delete_releases_quota(self):
        vol = Volume("q", "quota", quota_bytes=10)
        vol.create_file("/f", b"1234567890")
        vol.unlink("/f")
        vol.create_file("/g", b"1234567890")
        assert vol.used_bytes == 10

    def test_used_bytes_tracks_subtree_removal(self):
        vol = Volume("q", "quota")
        vol.mkdir("/d")
        vol.create_file("/d/f", b"xxxx")
        node = vol.resolve("/d")
        vol.fs.rmtree("/d")
        vol._forget(node)
        assert vol.used_bytes == 0


class TestState:
    def test_offline_blocks_everything(self, volume):
        volume.take_offline()
        with pytest.raises(VolumeOffline):
            volume.read("/docs/a.txt")
        with pytest.raises(VolumeOffline):
            volume.write("/docs/a.txt", b"x")
        volume.bring_online()
        assert volume.read("/docs/a.txt") == b"alpha"

    def test_read_only_blocks_mutation(self, volume):
        clone = volume.clone("vol1-ro")
        with pytest.raises(ReadOnlyFileSystem):
            clone.write("/docs/a.txt", b"x")
        with pytest.raises(ReadOnlyFileSystem):
            clone.unlink("/docs/a.txt")
        with pytest.raises(ReadOnlyFileSystem):
            clone.mkdir("/new")


class TestClone:
    def test_clone_preserves_content_and_vnodes(self, volume):
        clone = volume.clone("vol1-ro")
        assert clone.read("/docs/a.txt") == b"alpha"
        _vid, vnode = split_fid(volume.fid_of("/docs/a.txt"))
        assert clone.inode_by_vnode(vnode).data == b"alpha"
        assert clone.read_only
        assert clone.cloned_from == "vol1"

    def test_clone_shares_data_copy_on_write(self, volume):
        clone = volume.clone("vol1-ro")
        original = volume.resolve("/docs/a.txt")
        copied = clone.resolve("/docs/a.txt")
        assert original.data is copied.data  # shared until a write

    def test_writes_to_original_do_not_touch_clone(self, volume):
        clone = volume.clone("vol1-ro")
        volume.write("/docs/a.txt", b"changed")
        assert clone.read("/docs/a.txt") == b"alpha"
        assert volume.read("/docs/a.txt") == b"changed"

    def test_clone_copies_acls_independently(self, volume):
        clone = volume.clone("vol1-ro")
        docs = volume.resolve("/docs")
        volume.acls[docs.number].grant("howard", "rl")
        assert "howard" not in clone.acls[docs.number].positive

    def test_clone_of_offline_volume_rejected(self, volume):
        volume.take_offline()
        with pytest.raises(VolumeOffline):
            volume.clone("vol1-ro")


class TestACLInheritance:
    def test_new_directory_copies_parent_acl(self, volume):
        docs = volume.resolve("/docs")
        volume.acls[docs.number].grant("howard", "rl")
        sub = volume.mkdir("/docs/sub", owner="satya")
        assert volume.acls[sub.number].positive["howard"] == frozenset("rl")

    def test_file_governed_by_directory_acl(self, volume):
        a = volume.resolve("/docs/a.txt")
        docs = volume.resolve("/docs")
        assert volume.acl_for(a) is volume.acls[docs.number]

    def test_default_acl_grants_owner_everything(self):
        vol = Volume("v", "x", owner="satya")
        acl = vol.acls[vol.fs.root.number]
        assert acl.positive["satya"] == frozenset("rwidlak")
        assert acl.positive["system:anyuser"] == frozenset("rl")


class TestSnapshot:
    def test_snapshot_roundtrip(self, volume):
        volume.symlink("/docs/link", "/docs/a.txt", owner="satya")
        restored = Volume.from_snapshot(volume.snapshot())
        assert restored.read("/docs/a.txt") == b"alpha"
        assert restored.fs.readlink("/docs/link") == "/docs/a.txt"
        assert restored.used_bytes == volume.used_bytes
        assert restored.volume_id == "vol1"

    def test_snapshot_preserves_vnode_numbers(self, volume):
        fid = volume.fid_of("/docs/a.txt")
        restored = Volume.from_snapshot(volume.snapshot())
        assert restored.fid_of("/docs/a.txt") == fid

    def test_snapshot_preserves_acls(self, volume):
        docs = volume.resolve("/docs")
        volume.acls[docs.number].deny("mallory", "rl")
        restored = Volume.from_snapshot(volume.snapshot())
        restored_docs = restored.resolve("/docs")
        assert restored.acls[restored_docs.number].negative["mallory"] == frozenset("rl")

    def test_restored_volume_allocates_fresh_vnodes(self, volume):
        restored = Volume.from_snapshot(volume.snapshot())
        existing = set(restored._inodes)
        new_node = restored.create_file("/fresh", b"x")
        assert new_node.number not in existing

    def test_write_vnode(self, volume):
        _vid, vnode = split_fid(volume.fid_of("/docs/a.txt"))
        volume.write_vnode(vnode, b"rewritten")
        assert volume.read("/docs/a.txt") == b"rewritten"
        assert volume.used_bytes == len(b"rewritten")
