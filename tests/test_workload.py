"""Tests for the workload package: benchmark, synthetic users, traces."""

import pytest

from repro import ITCSystem, SystemConfig
from repro.workload import (
    AndrewBenchmark,
    PHASES,
    SOURCE_FILE,
    SizeModel,
    TraceRecorder,
    UserProfile,
    make_source_tree,
    provision_campus,
    replay,
    run_campus_day,
)
from repro.sim.rand import WorkloadRandom
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"


class TestSourceTree:
    def test_roughly_seventy_files(self):
        tree = make_source_tree()
        assert 65 <= len(tree) <= 75

    def test_deterministic(self):
        assert make_source_tree(seed=3) == make_source_tree(seed=3)

    def test_has_sources_and_headers(self):
        tree = make_source_tree()
        assert any(path.endswith(".c") for path in tree)
        assert any(path.endswith(".h") for path in tree)
        assert all(len(data) >= 1 for data in tree.values())


class TestSizeModels:
    def test_content_matches_sampled_size(self):
        rng = WorkloadRandom(1)
        body = SOURCE_FILE.content(rng)
        assert 1 <= len(body) <= SOURCE_FILE.cap_bytes

    def test_cap_respected(self):
        model = SizeModel(median_bytes=1000, sigma=2.0, cap_bytes=5000)
        rng = WorkloadRandom(2)
        assert all(model.sample(rng) <= 5000 for _ in range(500))


class TestAndrewBenchmark:
    def _setup(self, remote):
        campus = small_campus(functional_payload_crypto=False)
        session = alice_session(campus)
        tree = make_source_tree()
        if remote:
            campus.populate(campus.volume("u-alice"), tree, owner="alice")
            return campus, AndrewBenchmark(session, f"{HOME}/src", f"{HOME}/target")
        ws = session.workstation
        for path, data in sorted(tree.items()):
            parts = path.strip("/").split("/")
            built = ""
            for part in parts[:-1]:
                built += "/" + part
                if not ws.local_fs.exists(built):
                    ws.local_fs.mkdir(built)
            ws.local_fs.create(path, data)
        return campus, AndrewBenchmark(session, "/src", "/target")

    def test_local_run_produces_all_phases(self):
        campus, bench = self._setup(remote=False)
        result = run(campus, bench.run())
        assert set(result.phase_seconds) == set(PHASES)
        assert all(seconds >= 0 for seconds in result.phase_seconds.values())
        assert result.total_seconds > 100  # compile dominates

    def test_remote_run_copies_into_vice(self):
        campus, bench = self._setup(remote=True)
        result = run(campus, bench.run())
        volume = campus.volume("u-alice")
        assert volume.fs.exists("/target/main_00.c")
        assert volume.fs.exists("/target/a.out")
        assert result.total_seconds > 0

    def test_copy_preserves_contents(self):
        campus, bench = self._setup(remote=True)
        run(campus, bench.run())
        volume = campus.volume("u-alice")
        assert volume.read("/target/Makefile") == volume.read("/src/Makefile")

    def test_as_rows_ordered(self):
        campus, bench = self._setup(remote=False)
        result = run(campus, bench.run())
        rows = result.as_rows()
        assert [row[0] for row in rows] == list(PHASES) + ["Total"]
        assert rows[-1][1] == pytest.approx(result.total_seconds)

    def test_objects_go_to_local_tmp(self):
        """§3.1: temporaries belong in the local name space."""
        campus, bench = self._setup(remote=True)
        run(campus, bench.run())
        local_fs = campus.workstation(0).local_fs
        assert any(name.endswith(".o") for name in local_fs.listdir("/tmp"))
        assert not campus.volume("u-alice").fs.exists("/tmp")


class TestSyntheticCampus:
    def test_provision_creates_users_and_volumes(self):
        campus = ITCSystem(SystemConfig(clusters=2, workstations_per_cluster=2,
                                        functional_payload_crypto=False))
        users = provision_campus(campus, hot_files=5, cold_files=5,
                                 shared_files=5, binary_files=5)
        assert len(users) == 4
        # User volumes land in the owner's cluster.
        assert "u-user000" in campus.server(0).volumes
        assert "u-user002" in campus.server(1).volumes

    def test_short_day_runs_clean(self):
        campus = ITCSystem(SystemConfig(clusters=1, workstations_per_cluster=3,
                                        functional_payload_crypto=False))
        users = provision_campus(campus, hot_files=5, cold_files=5,
                                 shared_files=5, binary_files=5)
        profile = UserProfile(mean_think_seconds=5.0)
        for user in users:
            user.profile = profile
        summary = run_campus_day(campus, users, duration=300.0, warmup=100.0)
        assert summary["failures"] == 0
        assert summary["actions"] > 0
        assert 0.0 <= summary["hit_ratio"] <= 1.0
        assert summary["call_mix"]

    def test_warmup_resets_counters(self):
        campus = ITCSystem(SystemConfig(clusters=1, workstations_per_cluster=2,
                                        functional_payload_crypto=False))
        users = provision_campus(campus, hot_files=4, cold_files=4,
                                 shared_files=4, binary_files=4)
        for user in users:
            user.profile = UserProfile(mean_think_seconds=5.0)
        summary = run_campus_day(campus, users, duration=200.0, warmup=200.0)
        # After a warmup of similar length, the measured window's action
        # count reflects only itself (reset worked).
        assert summary["actions"] <= 2 * 200.0 / 5.0 * 2  # loose upper bound


class TestTracePersistence:
    def test_save_and_load_roundtrip(self, tmp_path):
        from repro.workload import TraceEvent, load_trace, save_trace

        events = [
            TraceEvent(0.0, "write_file", "/vice/usr/alice/a", 12),
            TraceEvent(3.5, "stat", "/vice/usr/alice/a"),
            TraceEvent(9.0, "unlink", "/vice/usr/alice/a"),
        ]
        path = tmp_path / "day.trace"
        save_trace(events, str(path))
        assert load_trace(str(path)) == events

    def test_loaded_trace_replays(self, tmp_path):
        from repro.workload import load_trace, save_trace

        campus = small_campus(workstations_per_cluster=2)
        session = alice_session(campus, 0)
        recorder = TraceRecorder(session)
        run(campus, recorder.write_file(f"{HOME}/t", b"traced"))
        run(campus, recorder.read_file(f"{HOME}/t"))
        path = tmp_path / "x.trace"
        save_trace(recorder.events, str(path))
        other = alice_session(campus, 1)
        failures = run(campus, replay(other, load_trace(str(path))))
        assert failures == 0


class TestTraces:
    def test_record_and_replay(self):
        campus = small_campus(workstations_per_cluster=2)
        session = alice_session(campus, 0)
        recorder = TraceRecorder(session)
        run(campus, recorder.write_file(f"{HOME}/a", b"data-a"))
        run(campus, recorder.read_file(f"{HOME}/a"))
        run(campus, recorder.stat(f"{HOME}/a"))
        run(campus, recorder.listdir(HOME))
        assert [event.op for event in recorder.events] == [
            "write_file", "read_file", "stat", "listdir",
        ]
        # Replay the same trace from another workstation.
        other = alice_session(campus, 1)
        failures = run(campus, replay(other, recorder.events))
        assert failures == 0

    def test_replay_preserve_timing(self):
        campus = small_campus()
        session = alice_session(campus, 0)
        recorder = TraceRecorder(session)
        sim = campus.sim

        def recorded_session():
            yield from recorder.write_file(f"{HOME}/x", b"1")
            yield sim.timeout(10.0)
            yield from recorder.stat(f"{HOME}/x")

        run(campus, recorded_session())
        start = sim.now
        run(campus, replay(session, recorder.events, preserve_timing=True))
        assert sim.now - start >= 10.0

    def test_replay_counts_failures(self):
        campus = small_campus()
        session = alice_session(campus, 0)
        recorder = TraceRecorder(session)
        run(campus, recorder.write_file(f"{HOME}/f", b"x"))
        run(campus, recorder.unlink(f"{HOME}/f"))
        # Replaying unlink twice: the second pass's unlink fails.
        events = recorder.events + [recorder.events[-1]]
        failures = run(campus, replay(session, events))
        assert failures == 1
