"""Unit tests for the Virtue workstation syscall surface."""

import pytest

from repro.errors import (
    BadFileDescriptor,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
)
from tests.helpers import alice_session, run, small_campus


@pytest.fixture
def campus():
    return small_campus()


@pytest.fixture
def session(campus):
    return alice_session(campus)


HOME = "/vice/usr/alice"


class TestOpenModes:
    def test_read_missing_fails(self, campus, session):
        with pytest.raises(FileNotFound):
            run(campus, session.open(f"{HOME}/missing", "r"))

    def test_write_creates(self, campus, session):
        fd = run(campus, session.open(f"{HOME}/new", "w"))
        run(campus, session.write(fd, b"content"))
        run(campus, session.close(fd))
        assert run(campus, session.read_file(f"{HOME}/new")) == b"content"

    def test_write_truncates(self, campus, session):
        run(campus, session.write_file(f"{HOME}/f", b"long original"))
        fd = run(campus, session.open(f"{HOME}/f", "w"))
        run(campus, session.write(fd, b"x"))
        run(campus, session.close(fd))
        assert run(campus, session.read_file(f"{HOME}/f")) == b"x"

    def test_append(self, campus, session):
        run(campus, session.write_file(f"{HOME}/f", b"ab"))
        run(campus, session.append_file(f"{HOME}/f", b"cd"))
        assert run(campus, session.read_file(f"{HOME}/f")) == b"abcd"

    def test_read_plus_preserves(self, campus, session):
        run(campus, session.write_file(f"{HOME}/f", b"0123456789"))
        fd = run(campus, session.open(f"{HOME}/f", "r+"))
        session.workstation.seek(fd, 2)
        run(campus, session.write(fd, b"XY"))
        run(campus, session.close(fd))
        assert run(campus, session.read_file(f"{HOME}/f")) == b"01XY456789"

    def test_bad_mode_rejected(self, campus, session):
        with pytest.raises(InvalidArgument):
            run(campus, session.open(f"{HOME}/f", "rw"))

    def test_open_directory_rejected(self, campus, session):
        with pytest.raises(IsADirectory):
            run(campus, session.open(HOME, "r"))

    def test_empty_create_on_close(self, campus, session):
        """Opening w and closing without writing still creates the file."""
        fd = run(campus, session.open(f"{HOME}/empty", "w"))
        run(campus, session.close(fd))
        status = run(campus, session.stat(f"{HOME}/empty"))
        assert status["size"] == 0


class TestReadWriteSemantics:
    def test_sequential_reads_advance_offset(self, campus, session):
        run(campus, session.write_file(f"{HOME}/f", b"abcdef"))
        fd = run(campus, session.open(f"{HOME}/f", "r"))
        assert run(campus, session.read(fd, 2)) == b"ab"
        assert run(campus, session.read(fd, 2)) == b"cd"
        assert run(campus, session.read(fd)) == b"ef"
        assert run(campus, session.read(fd)) == b""
        run(campus, session.close(fd))

    def test_write_beyond_end_zero_fills(self, campus, session):
        fd = run(campus, session.open(f"{HOME}/f", "w"))
        session.workstation.seek(fd, 4)
        run(campus, session.write(fd, b"tail"))
        run(campus, session.close(fd))
        assert run(campus, session.read_file(f"{HOME}/f")) == b"\x00\x00\x00\x00tail"

    def test_read_on_write_only_fd_rejected(self, campus, session):
        fd = run(campus, session.open(f"{HOME}/f", "w"))
        with pytest.raises(BadFileDescriptor):
            run(campus, session.read(fd))
        run(campus, session.close(fd))

    def test_write_on_read_only_fd_rejected(self, campus, session):
        run(campus, session.write_file(f"{HOME}/f", b"x"))
        fd = run(campus, session.open(f"{HOME}/f", "r"))
        with pytest.raises(BadFileDescriptor):
            run(campus, session.write(fd, b"y"))
        run(campus, session.close(fd))

    def test_reads_and_writes_generate_no_vice_calls(self, campus, session):
        """§3.2: between open and close, Virtue never talks to Vice."""
        run(campus, session.write_file(f"{HOME}/f", b"z" * 1000))
        fd = run(campus, session.open(f"{HOME}/f", "r+"))
        server_calls_before = campus.server(0).node.calls_received.total
        for _ in range(50):
            run(campus, session.read(fd, 10))
            run(campus, session.write(fd, b"q"))
        assert campus.server(0).node.calls_received.total == server_calls_before
        run(campus, session.close(fd))

    def test_clean_close_sends_nothing(self, campus, session):
        run(campus, session.write_file(f"{HOME}/f", b"data"))
        fd = run(campus, session.open(f"{HOME}/f", "r"))
        before = campus.server(0).node.calls_received.total
        run(campus, session.read(fd))
        run(campus, session.close(fd))
        assert campus.server(0).node.calls_received.total == before

    def test_dirty_close_stores_through(self, campus, session):
        run(campus, session.write_file(f"{HOME}/f", b"v1"))
        fd = run(campus, session.open(f"{HOME}/f", "r+"))
        run(campus, session.write(fd, b"v2"))
        before = campus.server(0).call_mix.count("store")
        run(campus, session.close(fd))
        assert campus.server(0).call_mix.count("store") == before + 1

    def test_double_close_rejected(self, campus, session):
        fd = run(campus, session.open(f"{HOME}/f", "w"))
        run(campus, session.close(fd))
        with pytest.raises(BadFileDescriptor):
            run(campus, session.close(fd))

    def test_unknown_fd_rejected(self, campus, session):
        with pytest.raises(BadFileDescriptor):
            run(campus, session.read(999))


class TestLocalFiles:
    def test_local_roundtrip(self, campus, session):
        run(campus, session.write_file("/tmp/scratch", b"temp data"))
        assert run(campus, session.read_file("/tmp/scratch")) == b"temp data"

    def test_local_files_generate_no_vice_traffic(self, campus, session):
        before = campus.server(0).node.calls_received.total
        run(campus, session.write_file("/tmp/obj", b"o" * 10_000))
        run(campus, session.read_file("/tmp/obj"))
        assert campus.server(0).node.calls_received.total == before

    def test_local_stat_and_listdir(self, campus, session):
        run(campus, session.write_file("/tmp/one", b"1"))
        assert "one" in run(campus, session.listdir("/tmp"))
        status = run(campus, session.stat("/tmp/one"))
        assert status["size"] == 1

    def test_local_mkdir_unlink_rename(self, campus, session):
        run(campus, session.mkdir("/tmp/d"))
        run(campus, session.write_file("/tmp/d/f", b"x"))
        run(campus, session.rename("/tmp/d/f", "/tmp/d/g"))
        assert run(campus, session.read_file("/tmp/d/g")) == b"x"
        run(campus, session.unlink("/tmp/d/g"))
        run(campus, session.rmdir("/tmp/d"))
        assert not run(campus, session.exists("/tmp/d"))

    def test_rename_across_boundary_rejected(self, campus, session):
        run(campus, session.write_file("/tmp/f", b"x"))
        with pytest.raises(InvalidArgument):
            run(campus, session.rename("/tmp/f", f"{HOME}/f"))


class TestViceNamespaceOps:
    def test_mkdir_listdir(self, campus, session):
        run(campus, session.mkdir(f"{HOME}/sub"))
        run(campus, session.write_file(f"{HOME}/sub/f", b"x"))
        assert run(campus, session.listdir(f"{HOME}/sub")) == ["f"]

    def test_unlink_removes_everywhere(self, campus, session):
        run(campus, session.write_file(f"{HOME}/f", b"x"))
        run(campus, session.unlink(f"{HOME}/f"))
        assert not run(campus, session.exists(f"{HOME}/f"))
        # The other workstation agrees.
        other = alice_session(campus, 1)
        assert not run(campus, other.exists(f"{HOME}/f"))

    def test_rename_file(self, campus, session):
        run(campus, session.write_file(f"{HOME}/old", b"v"))
        run(campus, session.rename(f"{HOME}/old", f"{HOME}/new"))
        assert run(campus, session.read_file(f"{HOME}/new")) == b"v"
        assert not run(campus, session.exists(f"{HOME}/old"))

    def test_rename_directory_revised_only(self, campus, session):
        run(campus, session.mkdir(f"{HOME}/d1"))
        run(campus, session.write_file(f"{HOME}/d1/f", b"x"))
        run(campus, session.rename(f"{HOME}/d1", f"{HOME}/d2"))
        assert run(campus, session.read_file(f"{HOME}/d2/f")) == b"x"

    def test_vice_symlink_revised(self, campus, session):
        run(campus, session.write_file(f"{HOME}/real", b"target data"))
        run(campus, session.symlink(f"{HOME}/alias", f"{HOME}/real"))
        assert run(campus, session.read_file(f"{HOME}/alias")) == b"target data"

    def test_stat_fields(self, campus, session):
        run(campus, session.write_file(f"{HOME}/f", b"12345"))
        status = run(campus, session.stat(f"{HOME}/f"))
        assert status["size"] == 5
        assert status["type"] == "file"
        assert status["owner"] == "alice"
        assert "r" in status["rights"]

    def test_crash_loses_descriptors(self, campus, session):
        ws = session.workstation
        fd = run(campus, session.open(f"{HOME}/f", "w"))
        ws.crash()
        assert ws.open_descriptors == 0
        ws.recover()
        with pytest.raises(BadFileDescriptor):
            run(campus, session.close(fd))
