"""Tests for the §3.2 write-back policy choice: store-on-close vs deferred."""

import pytest

from repro.errors import InvalidArgument
from tests.helpers import alice_session, run, small_campus

HOME = "/vice/usr/alice"


def deferred_campus(delay=10.0, **overrides):
    return small_campus(write_policy="deferred", flush_delay=delay, **overrides)


class TestStoreOnClose:
    def test_default_policy_is_on_close(self):
        campus = small_campus()
        assert campus.workstation(0).venus.write_policy == "on-close"

    def test_close_stores_immediately(self):
        campus = small_campus()
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"now"))
        assert campus.volume("u-alice").read("/f") == b"now"


class TestDeferredWriteBack:
    def test_close_does_not_store_immediately(self):
        campus = deferred_campus(delay=10.0)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"later"))
        from repro.errors import FileNotFound

        with pytest.raises(FileNotFound):
            campus.volume("u-alice").read("/f")

    def test_flush_happens_after_delay(self):
        campus = deferred_campus(delay=10.0)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"later"))
        campus.run(until=campus.sim.now + 30.0)
        assert campus.volume("u-alice").read("/f") == b"later"

    def test_reads_see_own_writes_before_flush(self):
        campus = deferred_campus(delay=60.0)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"mine"))
        assert run(campus, session.read_file(f"{HOME}/f")) == b"mine"

    def test_closes_coalesce_into_one_store(self):
        """The deferred policy's one advantage: repeated saves cost one
        store ("reduce server loads ... slower updates")."""
        campus = deferred_campus(delay=10.0)
        session = alice_session(campus)
        for revision in range(5):
            run(campus, session.write_file(f"{HOME}/f", b"rev%d" % revision))
        campus.run(until=campus.sim.now + 60.0)
        assert campus.volume("u-alice").read("/f") == b"rev4"
        server = campus.server(0)
        assert server.call_mix.count("store") <= 2
        assert campus.workstation(0).venus.coalesced_stores >= 3

    def test_crash_before_flush_loses_more(self):
        """The paper's reason for rejecting deferral: crash recovery.

        Store-on-close loses only open files; deferral loses every close
        inside the window.
        """
        campus = deferred_campus(delay=100.0)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"doomed"))
        campus.workstation(0).crash()  # before the flush fires
        campus.workstation(0).recover()
        from repro.errors import FileNotFound

        with pytest.raises(FileNotFound):
            campus.volume("u-alice").read("/f")

    def test_other_workstations_stale_until_flush(self):
        """Deferral breaks "changes by one user are immediately visible"."""
        campus = deferred_campus(delay=50.0, workstations_per_cluster=2)
        writer = alice_session(campus, 0)
        reader = alice_session(campus, 1)
        run(campus, writer.write_file(f"{HOME}/f", b"v1"))
        campus.run(until=campus.sim.now + 60.0)  # v1 flushes
        run(campus, writer.write_file(f"{HOME}/f", b"v2"))  # deferred
        assert run(campus, reader.read_file(f"{HOME}/f")) == b"v1"  # stale!
        campus.run(until=campus.sim.now + 60.0)
        assert run(campus, reader.read_file(f"{HOME}/f")) == b"v2"

    def test_flush_all_writes_through_now(self):
        campus = deferred_campus(delay=1000.0)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"urgent"))
        run(campus, campus.workstation(0).venus.flush_all("alice"))
        assert campus.volume("u-alice").read("/f") == b"urgent"

    def test_invalid_policy_rejected(self):
        with pytest.raises(InvalidArgument):
            small_campus(write_policy="psychic")


class TestFlushRetry:
    """Deferred write-back retries with backoff instead of dropping
    silently; exhausted retries are counted as lost writes."""

    def test_flush_retries_until_server_returns(self):
        campus = deferred_campus(delay=10.0, flush_retry_limit=3)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"persistent"))
        campus.server(0).host.crash()
        # First flush attempt fails; recover during the backoff window.
        campus.run(until=campus.sim.now + 25.0)
        campus.server(0).host.recover()
        campus.run(until=campus.sim.now + 60.0)
        venus = campus.workstation(0).venus
        assert campus.volume("u-alice").read("/f") == b"persistent"
        assert venus.flush_retries >= 1
        assert venus.lost_writes == 0

    def test_exhausted_retries_count_a_lost_write(self):
        campus = deferred_campus(delay=5.0, flush_retry_limit=2)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"doomed"))
        campus.server(0).host.crash()  # and never returns
        campus.run(until=campus.sim.now + 300.0)
        venus = campus.workstation(0).venus
        assert venus.lost_writes == 1
        assert venus.flush_retries == 2
        # The data survives locally (the cache is the only copy left).
        entry = venus.cache.lookup("/usr/alice/f")
        assert entry is not None and entry.dirty

    def test_retry_limit_zero_reproduces_single_attempt(self):
        campus = deferred_campus(delay=5.0, flush_retry_limit=0)
        session = alice_session(campus)
        run(campus, session.write_file(f"{HOME}/f", b"one shot"))
        campus.server(0).host.crash()
        campus.run(until=campus.sim.now + 120.0)
        venus = campus.workstation(0).venus
        assert venus.flush_retries == 0
        assert venus.lost_writes == 1

    def test_lost_write_metric_registered(self):
        campus = deferred_campus()
        names = campus.metrics.names("venus.")
        host = campus.workstation(0).host.name
        assert f"venus.{host}.lost_writes" in names
        assert f"venus.{host}.flush_retries" in names
